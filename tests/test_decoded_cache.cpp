// The host decoded-postings cache (DESIGN.md §7): unit behavior of the
// DecodedCache wrapper, and the CpuEngine / HybridEngine integration —
// results must be bit-identical with the cache on, off, cold, warm, and
// while a tiny budget forces evictions.
#include "cpu/decoded_cache.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/hybrid_engine.h"
#include "cpu/engine.h"
#include "engine_test_util.h"

using namespace griffin;

TEST(DecodedCache, InsertLookupAndByteAccounting) {
  cpu::DecodedCache cache(cpu::DecodedCache::entry_bytes(10) * 2);
  EXPECT_TRUE(cache.enabled());
  std::vector<codec::DocId> docs{1, 2, 3};
  ASSERT_NE(cache.insert(7, docs), nullptr);
  EXPECT_EQ(cache.bytes(), cpu::DecodedCache::entry_bytes(3));
  ASSERT_NE(cache.lookup(7), nullptr);
  EXPECT_EQ(*cache.lookup(7), docs);
  EXPECT_TRUE(cache.resident(7));
  EXPECT_FALSE(cache.resident(8));
}

TEST(DecodedCache, TinyBudgetEvictsLeastRecent) {
  // Room for two 8-element lists, not three.
  cpu::DecodedCache cache(cpu::DecodedCache::entry_bytes(8) * 2);
  const std::vector<codec::DocId> docs(8, 42);
  std::uint64_t evicted = 0;
  cache.insert(1, docs);
  cache.insert(2, docs);
  cache.insert(3, docs, &evicted);
  EXPECT_EQ(evicted, 1u);
  EXPECT_FALSE(cache.resident(1));
  EXPECT_TRUE(cache.resident(2));
  EXPECT_TRUE(cache.resident(3));
  EXPECT_LE(cache.bytes(), cache.byte_budget());
}

TEST(DecodedCache, ZeroBudgetDisables) {
  cpu::DecodedCache cache(0);
  EXPECT_FALSE(cache.enabled());
  EXPECT_EQ(cache.insert(1, std::vector<codec::DocId>{1}), nullptr);
  EXPECT_FALSE(cache.resident(1));
}

// ---- Engine integration ----

namespace {

void expect_bit_identical(const std::vector<core::ScoredDoc>& got,
                          const std::vector<core::ScoredDoc>& want,
                          const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].doc, want[i].doc) << label << " rank " << i;
    EXPECT_EQ(got[i].score, want[i].score) << label << " rank " << i;
  }
}

std::vector<core::Query> repeated_log(std::uint32_t num_terms) {
  workload::QueryLogConfig base;
  workload::RepeatedLogConfig rep;
  rep.num_queries = 60;
  rep.unique_queries = 12;
  rep.popularity_zipf_s = 1.2;
  rep.seed = 31;
  return workload::generate_repeated_query_log(base, rep, num_terms);
}

cpu::CpuEngineOptions cpu_opts(std::size_t cache_bytes) {
  cpu::CpuEngineOptions opt;
  opt.decoded_cache_bytes = cache_bytes;
  // Put the stream on the skip path, where the cache fills (the merge path
  // is deliberately lookup-only; cpu/svs_step.h).
  opt.skip_ratio = 1.0;
  return opt;
}

}  // namespace

TEST(CpuDecodedCache, BitIdenticalColdWarmAndDisabled) {
  const auto& idx = testutil::small_index();
  cpu::CpuEngine uncached(idx, {}, cpu_opts(0));
  cpu::CpuEngine cached(idx, {}, cpu_opts(std::size_t{1} << 30));

  const auto log = repeated_log(static_cast<std::uint32_t>(idx.num_terms()));
  core::CacheCounters totals;
  for (const auto& q : log) {
    const auto want = uncached.execute(q);
    const auto got = cached.execute(q);
    expect_bit_identical(got.topk, want.topk, "cpu-decoded-cache");
    EXPECT_EQ(got.metrics.result_count, want.metrics.result_count);
    totals += got.metrics.cache;
    EXPECT_EQ(want.metrics.cache.host_hits, 0u);  // cache off: no counters
    EXPECT_EQ(want.metrics.cache.host_misses, 0u);
  }
  EXPECT_GT(totals.host_hits, 0u);
  EXPECT_GT(totals.host_misses, 0u);
}

TEST(CpuDecodedCache, WarmRepeatIsNoSlowerAndHits) {
  const auto& idx = testutil::small_index();
  cpu::CpuEngine engine(idx, {}, cpu_opts(std::size_t{1} << 30));
  core::Query q;
  q.terms = {3, 200};  // short probe list vs long target: skip path

  const auto cold = engine.execute(q);
  const auto warm = engine.execute(q);
  expect_bit_identical(warm.topk, cold.topk, "warm-vs-cold");
  EXPECT_GT(warm.metrics.cache.host_hits, 0u);
  // The warm probe list skips its decode; total time cannot grow.
  EXPECT_LE(warm.metrics.total.ps(), cold.metrics.total.ps());
}

TEST(CpuDecodedCache, SingleTermQueryWarmsAndReuses) {
  const auto& idx = testutil::small_index();
  cpu::CpuEngine engine(idx, {}, cpu_opts(std::size_t{1} << 30));
  core::Query q;
  q.terms = {50};

  const auto cold = engine.execute(q);
  EXPECT_EQ(cold.metrics.cache.host_hits, 0u);
  EXPECT_GT(cold.metrics.cache.host_misses, 0u);
  const auto warm = engine.execute(q);
  expect_bit_identical(warm.topk, cold.topk, "single-term");
  EXPECT_GT(warm.metrics.cache.host_hits, 0u);
  EXPECT_LT(warm.metrics.decode.ps(), cold.metrics.decode.ps());
}

TEST(CpuDecodedCache, EvictionUnderPressureStaysCorrect) {
  const auto& idx = testutil::small_index();
  // Each query {0, t} sorts t first (term 0 has the biggest list), so t is
  // the probe list the cache fills. Budget sized from the actual lists to
  // hold roughly two of the four probes: cycling through all four must
  // evict, and the re-visit at the end runs post-eviction.
  const index::TermId probes[] = {100, 150, 200, 250};
  std::uint64_t budget = 0;
  for (const auto t : probes) {
    budget += cpu::DecodedCache::entry_bytes(idx.list(t).size());
  }
  budget /= 2;
  cpu::CpuEngine cached(idx, {}, cpu_opts(budget));
  cpu::CpuEngine uncached(idx, {}, cpu_opts(0));

  core::CacheCounters totals;
  for (int round = 0; round < 3; ++round) {
    for (const auto t : probes) {
      core::Query q;
      q.terms = {0, t};
      const auto got = cached.execute(q);
      const auto want = uncached.execute(q);
      expect_bit_identical(got.topk, want.topk, "post-eviction");
      totals += got.metrics.cache;
      EXPECT_LE(cached.decoded_cache().bytes(),
                cached.decoded_cache().byte_budget());
    }
  }
  EXPECT_GT(totals.host_evictions, 0u);
}

TEST(HybridDecodedCache, BitIdenticalWithBothTiersOnAndOff) {
  const auto& idx = testutil::small_index();
  core::HybridOptions off;
  off.gpu.list_cache = false;
  off.cpu.decoded_cache_bytes = 0;
  core::HybridEngine uncached(idx, {}, off);
  core::HybridEngine cached(idx);  // both tiers on by default

  const auto log = repeated_log(static_cast<std::uint32_t>(idx.num_terms()));
  for (const auto& q : log) {
    const auto want = uncached.execute(q);
    const auto got = cached.execute(q);
    expect_bit_identical(got.topk, want.topk, "hybrid-caches");
    EXPECT_EQ(got.metrics.result_count, want.metrics.result_count);
  }
}
