#include "codec/varbyte.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace gc = griffin::codec;

TEST(VarByte, KnownEncodings) {
  std::vector<std::uint8_t> out;
  EXPECT_EQ(gc::vbyte_encode_one(0, out), 1u);
  EXPECT_EQ(out.back(), 0);
  out.clear();
  EXPECT_EQ(gc::vbyte_encode_one(127, out), 1u);
  EXPECT_EQ(out.back(), 127);
  out.clear();
  EXPECT_EQ(gc::vbyte_encode_one(128, out), 2u);
  EXPECT_EQ(out[0], 0x80u);
  EXPECT_EQ(out[1], 0x01u);
  out.clear();
  EXPECT_EQ(gc::vbyte_encode_one(0xFFFFFFFFu, out), 5u);
}

TEST(VarByte, SizeFormula) {
  const std::vector<std::uint32_t> v{0, 127, 128, 16383, 16384, 0xFFFFFFFFu};
  EXPECT_EQ(gc::vbyte_encoded_bytes(v), 1u + 1 + 2 + 2 + 3 + 5);
  EXPECT_EQ(gc::vbyte_encode(v).size(), gc::vbyte_encoded_bytes(v));
}

TEST(VarByte, RoundTripRandom) {
  griffin::util::Xoshiro256 rng(55);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint32_t> v(1 + rng.bounded(500));
    for (auto& x : v) {
      // Mix of magnitudes so all byte lengths are exercised.
      const int shift = static_cast<int>(rng.bounded(32));
      x = static_cast<std::uint32_t>(rng() >> shift);
    }
    const auto bytes = gc::vbyte_encode(v);
    std::vector<std::uint32_t> out(v.size());
    gc::vbyte_decode(bytes, static_cast<std::uint32_t>(v.size()), out.data());
    EXPECT_EQ(out, v);
  }
}

TEST(VarByte, DecodeOneAdvancesPosition) {
  const std::vector<std::uint32_t> v{5, 300, 70000};
  const auto bytes = gc::vbyte_encode(v);
  std::size_t pos = 0;
  EXPECT_EQ(gc::vbyte_decode_one(bytes, pos), 5u);
  EXPECT_EQ(pos, 1u);
  EXPECT_EQ(gc::vbyte_decode_one(bytes, pos), 300u);
  EXPECT_EQ(pos, 3u);
  EXPECT_EQ(gc::vbyte_decode_one(bytes, pos), 70000u);
  EXPECT_EQ(pos, bytes.size());
}
