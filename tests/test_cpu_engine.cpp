#include "cpu/engine.h"

#include <gtest/gtest.h>

#include "engine_test_util.h"

using namespace griffin;

TEST(CpuEngine, MatchesReferenceOnQueryLog) {
  const auto& idx = testutil::small_index();
  cpu::CpuEngine engine(idx);

  workload::QueryLogConfig qcfg;
  qcfg.num_queries = 60;
  qcfg.seed = 31;
  const auto log = workload::generate_query_log(
      qcfg, static_cast<std::uint32_t>(idx.num_terms()));
  for (const auto& q : log) {
    const auto got = engine.execute(q);
    const auto want = testutil::reference_topk(idx, q);
    testutil::expect_same_topk(got.topk, want, "cpu");
    EXPECT_EQ(got.metrics.result_count,
              testutil::reference_matches(idx, q).size());
  }
}

TEST(CpuEngine, EmptyQuery) {
  const auto& idx = testutil::small_index();
  cpu::CpuEngine engine(idx);
  const auto res = engine.execute(core::Query{});
  EXPECT_TRUE(res.topk.empty());
  EXPECT_EQ(res.metrics.result_count, 0u);
}

TEST(CpuEngine, SingleTermQuery) {
  const auto& idx = testutil::small_index();
  cpu::CpuEngine engine(idx);
  core::Query q;
  q.terms = {250};  // a rare-ish term
  q.k = 5;
  const auto got = engine.execute(q);
  const auto want = testutil::reference_topk(idx, q);
  testutil::expect_same_topk(got.topk, want, "single-term");
  EXPECT_EQ(got.metrics.result_count, idx.list(250).size());
}

TEST(CpuEngine, RepeatedTermBehavesLikeSingle) {
  const auto& idx = testutil::small_index();
  cpu::CpuEngine engine(idx);
  core::Query q;
  q.terms = {100, 100};
  const auto got = engine.execute(q);
  EXPECT_EQ(got.metrics.result_count, idx.list(100).size());
}

TEST(CpuEngine, MetricsAreAccounted) {
  const auto& idx = testutil::small_index();
  cpu::CpuEngine engine(idx);
  core::Query q;
  // Same-topic terms (ids congruent mod num_topics) so the intermediate
  // result survives both steps.
  q.terms = {0, 64, 128};
  const auto res = engine.execute(q);
  ASSERT_GT(res.metrics.result_count, 0u);
  EXPECT_GT(res.metrics.total.ps(), 0);
  EXPECT_GT(res.metrics.intersect.ps(), 0);
  EXPECT_EQ(res.metrics.placements.size(), 2u);  // two pairwise steps
  for (const auto p : res.metrics.placements) {
    EXPECT_EQ(p, core::Placement::kCpu);
  }
  EXPECT_EQ(res.metrics.gpu_kernels, 0u);
  EXPECT_EQ(res.metrics.migrations, 0u);
  EXPECT_EQ(res.metrics.transfer.ps(), 0);
  // Stage times sum to the total.
  const auto sum = res.metrics.decode + res.metrics.intersect +
                   res.metrics.transfer + res.metrics.rank;
  EXPECT_EQ(sum.ps(), res.metrics.total.ps());
}

TEST(CpuEngine, KLimitsResults) {
  const auto& idx = testutil::small_index();
  cpu::CpuEngine engine(idx);
  core::Query q;
  q.terms = {0, 1};
  q.k = 3;
  const auto res = engine.execute(q);
  EXPECT_LE(res.topk.size(), 3u);
  if (res.metrics.result_count >= 3) {
    EXPECT_EQ(res.topk.size(), 3u);
  }
}

TEST(CpuEngine, SkipRatioOptionChangesNothingFunctionally) {
  const auto& idx = testutil::small_index();
  cpu::CpuEngineOptions always_merge;
  always_merge.skip_ratio = 1e18;
  cpu::CpuEngineOptions always_skip;
  always_skip.skip_ratio = 1.0;
  cpu::CpuEngine e1(idx, {}, always_merge);
  cpu::CpuEngine e2(idx, {}, always_skip);

  core::Query q;
  q.terms = {3, 80, 222};
  const auto r1 = e1.execute(q);
  const auto r2 = e2.execute(q);
  testutil::expect_same_topk(r1.topk, r2.topk, "merge-vs-skip");
  EXPECT_EQ(r1.metrics.result_count, r2.metrics.result_count);
}
