// Engine-level fault handling (DESIGN.md §11/§16): an injected GPU device
// fault abandons the step, charges the wasted device time, and re-plans the
// rest of the query on the CPU — with bit-identical results; an injected
// PCIe error re-pays the transfer (bounded retry) and never corrupts data;
// injected device memory pressure climbs the OOM degradation ladder
// (evict -> unfuse -> re-plan one step) without changing a bit. And the
// golden-parity invariant: an armed injector whose faults never fire
// perturbs nothing.
#include <gtest/gtest.h>

#include "core/executor.h"
#include "core/hybrid_engine.h"
#include "cpu/decoded_cache.h"
#include "cpu/svs_step.h"
#include "engine_test_util.h"

using namespace griffin;

namespace {

core::HybridOptions gpu_heavy_options() {
  core::HybridOptions opt;
  // Pin every schedulable step to the GPU so fault sites are guaranteed to
  // be exercised; the fault path must still fall back to the CPU.
  opt.scheduler.policy = core::SchedulerPolicy::kAlwaysGpu;
  return opt;
}

void expect_stage_identity(const core::QueryMetrics& m) {
  EXPECT_EQ(m.decode + m.intersect + m.transfer + m.rank,
            m.total + m.overlap.saved);
}

}  // namespace

TEST(FaultEngine, ArmedButSilentInjectorIsBitIdentical) {
  const auto& idx = testutil::small_index();
  core::HybridOptions plain = gpu_heavy_options();
  core::HybridOptions armed = gpu_heavy_options();
  // Armed sites (the injector is consulted) whose scripted faults point at
  // a query id the log never reaches: every decision returns false, and
  // the run must be bit-identical to one with no injector wired at all.
  armed.faults.gpu.triggers.push_back({/*query=*/999999, /*scope=*/0});
  armed.faults.pcie.triggers.push_back({/*query=*/999999, /*scope=*/0});

  core::HybridEngine a(idx, {}, plain);
  core::HybridEngine b(idx, {}, armed);

  workload::QueryLogConfig qcfg;
  qcfg.num_queries = 40;
  qcfg.seed = 81;
  const auto log = workload::generate_query_log(
      qcfg, static_cast<std::uint32_t>(idx.num_terms()));
  for (const auto& q : log) {
    const auto ra = a.execute(q);
    const auto rb = b.execute(q);
    EXPECT_EQ(ra.metrics.total, rb.metrics.total);
    EXPECT_EQ(ra.metrics.decode, rb.metrics.decode);
    EXPECT_EQ(ra.metrics.transfer, rb.metrics.transfer);
    EXPECT_EQ(ra.metrics.gpu_kernels, rb.metrics.gpu_kernels);
    EXPECT_EQ(ra.trace.size(), rb.trace.size());
    EXPECT_FALSE(rb.metrics.faults.any());
    testutil::expect_same_topk(ra.topk, rb.topk, "armed-silent");
  }
}

TEST(FaultEngine, GpuFaultDegradesToCpuWithIdenticalResults) {
  const auto& idx = testutil::small_index();
  core::HybridOptions opt = gpu_heavy_options();
  opt.faults.gpu.triggers.push_back({/*query=*/0, /*scope=*/0});

  core::Query q;
  q.terms = {5, 15, 30};
  q.id = 0;

  core::HybridEngine faulty(idx, {}, opt);
  const auto res = faulty.execute(q);

  // Exactly one abandoned step: after the fault the whole remainder is
  // forced onto the CPU, so the (every-step) trigger never fires again.
  EXPECT_EQ(res.metrics.faults.gpu_faults, 1u);
  EXPECT_EQ(res.metrics.faults.gpu_wasted,
            sim::Duration::from_us(opt.faults.gpu_fault_cost_us));
  for (const auto p : res.metrics.placements) {
    EXPECT_EQ(p, core::Placement::kCpu);
  }

  // The wasted time is a real trace record, flagged and summarized.
  core::TraceSummary sum;
  sum.add(res.trace);
  EXPECT_EQ(sum.faulted_steps, 1u);
  EXPECT_EQ(sum.gpu_intersects, 0u);
  bool saw_faulted = false;
  for (const auto& r : res.trace) {
    if (r.faulted) {
      saw_faulted = true;
      EXPECT_EQ(r.placement, core::Placement::kGpu);
      EXPECT_EQ(r.duration,
                sim::Duration::from_us(opt.faults.gpu_fault_cost_us));
    }
  }
  EXPECT_TRUE(saw_faulted);
  expect_stage_identity(res.metrics);

  // Bit-identical answer to the reference and to a fault-free engine.
  const auto want = testutil::reference_topk(idx, q);
  testutil::expect_same_topk(res.topk, want, "gpu-fault");
  core::HybridEngine clean(idx, {}, gpu_heavy_options());
  const auto ref = clean.execute(q);
  ASSERT_EQ(res.topk.size(), ref.topk.size());
  for (std::size_t i = 0; i < ref.topk.size(); ++i) {
    EXPECT_EQ(res.topk[i].doc, ref.topk[i].doc);
    EXPECT_EQ(res.topk[i].score, ref.topk[i].score);  // bit-exact
  }
  // The wasted device time is part of the query's latency.
  EXPECT_GE(res.metrics.total, res.metrics.faults.gpu_wasted);
}

TEST(FaultEngine, GpuFaultOnSingleTermQuery) {
  const auto& idx = testutil::small_index();
  core::HybridOptions opt = gpu_heavy_options();
  opt.faults.gpu.triggers.push_back({/*query=*/7, /*scope=*/0});

  core::Query q;
  q.terms = {12};
  q.id = 7;
  core::HybridEngine engine(idx, {}, opt);
  const auto res = engine.execute(q);
  EXPECT_EQ(res.metrics.faults.gpu_faults, 1u);
  const auto want = testutil::reference_topk(idx, q);
  testutil::expect_same_topk(res.topk, want, "gpu-fault-decode");
  expect_stage_identity(res.metrics);
}

TEST(FaultEngine, GpuFaultScopeGatesTheTrigger) {
  const auto& idx = testutil::small_index();
  core::HybridOptions opt = gpu_heavy_options();
  opt.faults.gpu.triggers.push_back({/*query=*/0, /*scope=*/3});
  opt.fault_scope = 1;  // this engine is not scope 3

  core::Query q;
  q.terms = {5, 15};
  core::HybridEngine engine(idx, {}, opt);
  const auto res = engine.execute(q);
  EXPECT_EQ(res.metrics.faults.gpu_faults, 0u);
  EXPECT_FALSE(res.metrics.faults.any());
}

TEST(FaultEngine, PcieErrorsRetryAndRepayTransferTime) {
  const auto& idx = testutil::small_index();
  core::HybridOptions opt = gpu_heavy_options();
  opt.faults.pcie.triggers.push_back({/*query=*/0, /*scope=*/0});

  core::Query q;
  q.terms = {5, 15, 30};
  q.id = 0;

  core::HybridEngine faulty(idx, {}, opt);
  core::HybridEngine clean(idx, {}, gpu_heavy_options());
  const auto res = faulty.execute(q);
  const auto ref = clean.execute(q);

  // Every transfer's first attempt failed and was retried: errors counted,
  // the re-paid time visible in both the counter and the transfer stage.
  EXPECT_GT(res.metrics.faults.pcie_errors, 0u);
  EXPECT_GT(res.metrics.faults.pcie_retry_time.ps(), 0);
  EXPECT_EQ(res.metrics.transfer,
            ref.metrics.transfer + res.metrics.faults.pcie_retry_time);
  EXPECT_EQ(res.metrics.faults.gpu_faults, 0u);
  expect_stage_identity(res.metrics);

  // Retries are timing-only: the answer is bit-identical.
  ASSERT_EQ(res.topk.size(), ref.topk.size());
  for (std::size_t i = 0; i < ref.topk.size(); ++i) {
    EXPECT_EQ(res.topk[i].doc, ref.topk[i].doc);
    EXPECT_EQ(res.topk[i].score, ref.topk[i].score);
  }
}

TEST(FaultEngine, PcieRetryCountIsBoundedPerTransfer) {
  const auto& idx = testutil::small_index();
  core::HybridOptions opt = gpu_heavy_options();
  opt.faults.pcie.probability = 1.0;  // every attempt fails...
  opt.faults.pcie_max_retries = 2;    // ...but the link gives up retrying

  core::Query q;
  q.terms = {5, 15};
  core::HybridEngine engine(idx, {}, opt);
  const auto res = engine.execute(q);
  EXPECT_GT(res.metrics.faults.pcie_errors, 0u);

  core::HybridEngine clean(idx, {}, gpu_heavy_options());
  const auto ref = clean.execute(q);
  // Worst case pays exactly max_retries extra copies of the clean transfer
  // time (p = 1 makes the worst case the only case).
  EXPECT_EQ(res.metrics.transfer, ref.metrics.transfer * 3.0);
  testutil::expect_same_topk(res.topk, ref.topk, "pcie-bounded");
}

TEST(FaultEngine, ProbabilisticFaultsPreserveCorrectnessOverALog) {
  const auto& idx = testutil::small_index();
  core::HybridOptions opt = gpu_heavy_options();
  opt.faults.gpu.probability = 0.15;
  opt.faults.pcie.probability = 0.02;
  opt.faults.seed = 2026;

  core::HybridEngine engine(idx, {}, opt);
  workload::QueryLogConfig qcfg;
  qcfg.num_queries = 60;
  qcfg.seed = 82;
  const auto log = workload::generate_query_log(
      qcfg, static_cast<std::uint32_t>(idx.num_terms()));

  fault::FaultCounters total;
  for (const auto& q : log) {
    const auto res = engine.execute(q);
    total += res.metrics.faults;
    expect_stage_identity(res.metrics);
    const auto want = testutil::reference_topk(idx, q);
    testutil::expect_same_topk(res.topk, want, "probabilistic");
  }
  // The sweep actually exercised both fault sites.
  EXPECT_GT(total.gpu_faults, 0u);
  EXPECT_GT(total.pcie_errors, 0u);
  EXPECT_GT(total.gpu_wasted.ps(), 0);
}

TEST(FaultEngine, FaultRunsAreDeterministic) {
  const auto& idx = testutil::small_index();
  core::HybridOptions opt = gpu_heavy_options();
  opt.faults.gpu.probability = 0.2;
  opt.faults.pcie.probability = 0.05;
  opt.faults.seed = 5;

  workload::QueryLogConfig qcfg;
  qcfg.num_queries = 30;
  qcfg.seed = 83;
  const auto log = workload::generate_query_log(
      qcfg, static_cast<std::uint32_t>(idx.num_terms()));

  core::HybridEngine a(idx, {}, opt);
  core::HybridEngine b(idx, {}, opt);
  for (const auto& q : log) {
    const auto ra = a.execute(q);
    const auto rb = b.execute(q);
    EXPECT_EQ(ra.metrics.total, rb.metrics.total);
    EXPECT_EQ(ra.metrics.faults.gpu_faults, rb.metrics.faults.gpu_faults);
    EXPECT_EQ(ra.metrics.faults.pcie_errors, rb.metrics.faults.pcie_errors);
    EXPECT_EQ(ra.metrics.faults.gpu_wasted, rb.metrics.faults.gpu_wasted);
    EXPECT_EQ(ra.trace.size(), rb.trace.size());
  }
}

// ---- The OOM degradation ladder (DESIGN.md §16) -------------------------

TEST(FaultEngine, OomEvictsDeviceCacheAndProceedsOnTheGpu) {
  const auto& idx = testutil::small_index();
  core::HybridOptions opt = gpu_heavy_options();
  opt.faults.oom.triggers.push_back({/*query=*/1, /*scope=*/0});
  core::HybridEngine faulty(idx, {}, opt);
  core::HybridEngine clean(idx, {}, gpu_heavy_options());

  // Warm the device list cache with an unaffected query so rung 1 has
  // something to evict when the triggered query allocates.
  core::Query warm;
  warm.terms = {5, 15, 30};
  warm.id = 0;
  faulty.execute(warm);
  clean.execute(warm);

  core::Query q;
  q.terms = {5, 15, 30};
  q.id = 1;
  const auto res = faulty.execute(q);
  const auto ref = clean.execute(q);

  EXPECT_GT(res.metrics.faults.oom_faults, 0u);
  EXPECT_GT(res.metrics.faults.oom_evictions, 0u);
  EXPECT_GT(res.metrics.faults.oom_evicted_bytes, 0u);
  EXPECT_GT(res.metrics.faults.oom_recovery.ps(), 0);
  EXPECT_EQ(res.metrics.faults.gpu_faults, 0u);
  expect_stage_identity(res.metrics);

  // Rungs 1/2 recover on the device — bit-identical answer, only timing
  // and counters changed.
  ASSERT_EQ(res.topk.size(), ref.topk.size());
  for (std::size_t i = 0; i < ref.topk.size(); ++i) {
    EXPECT_EQ(res.topk[i].doc, ref.topk[i].doc);
    EXPECT_EQ(res.topk[i].score, ref.topk[i].score);
  }
}

TEST(FaultEngine, OomLadderBottomsOutToSingleStepDegrade) {
  const auto& idx = testutil::small_index();
  core::HybridOptions opt = gpu_heavy_options();
  opt.gpu.list_cache = false;      // rung 1 has nothing to evict
  opt.scheduler.prefetch = false;  // no optional uploads drawing OOM draws
  opt.faults.oom.triggers.push_back({/*query=*/0, /*scope=*/0});

  core::Query q;
  q.terms = {5, 15, 30};
  q.id = 0;
  core::HybridEngine faulty(idx, {}, opt);
  const auto res = faulty.execute(q);

  // Sequential execution never batches, so the ladder goes straight to
  // rung 3: the hit step is abandoned and re-planned host-side; later
  // steps decide freely (and here hit the trigger again until the plan
  // finishes on the CPU).
  EXPECT_GT(res.metrics.faults.oom_faults, 0u);
  EXPECT_GT(res.metrics.faults.oom_degraded_steps, 0u);
  EXPECT_EQ(res.metrics.faults.oom_evictions, 0u);
  EXPECT_EQ(res.metrics.faults.oom_unfused, 0u);
  EXPECT_EQ(res.metrics.faults.gpu_faults, 0u);
  EXPECT_EQ(res.metrics.faults.oom_recovery,
            sim::Duration::from_us(opt.faults.oom_replan_cost_us) *
                double(res.metrics.faults.oom_degraded_steps));
  expect_stage_identity(res.metrics);

  // Every abandoned step is a faulted trace record charging exactly the
  // replan stall.
  core::TraceSummary sum;
  sum.add(res.trace);
  EXPECT_EQ(sum.faulted_steps, res.metrics.faults.oom_degraded_steps);
  for (const auto& r : res.trace) {
    if (r.faulted) {
      EXPECT_EQ(r.duration,
                sim::Duration::from_us(opt.faults.oom_replan_cost_us));
    }
  }

  const auto want = testutil::reference_topk(idx, q);
  testutil::expect_same_topk(res.topk, want, "oom-rung3");
}

TEST(FaultEngine, ProbabilisticOomPreservesCorrectnessOverALog) {
  const auto& idx = testutil::small_index();
  core::HybridOptions opt = gpu_heavy_options();
  opt.faults.oom.probability = 0.2;
  opt.faults.seed = 303;

  core::HybridEngine engine(idx, {}, opt);
  core::HybridEngine twin(idx, {}, opt);
  workload::QueryLogConfig qcfg;
  qcfg.num_queries = 50;
  qcfg.seed = 84;
  const auto log = workload::generate_query_log(
      qcfg, static_cast<std::uint32_t>(idx.num_terms()));

  fault::FaultCounters total;
  for (const auto& q : log) {
    const auto res = engine.execute(q);
    const auto res2 = twin.execute(q);
    EXPECT_EQ(res.metrics.total, res2.metrics.total);  // deterministic
    total += res.metrics.faults;
    expect_stage_identity(res.metrics);
    const auto want = testutil::reference_topk(idx, q);
    testutil::expect_same_topk(res.topk, want, "oom-probabilistic");
  }
  EXPECT_GT(total.oom_faults, 0u);
  // Both recovery modes fired somewhere in the sweep: evictions while the
  // warm cache had bytes, step degrades once it drained.
  EXPECT_GT(total.oom_evictions + total.oom_degraded_steps, 0u);
}

// ---- Manual step harness: the fault paths the planner's policies cannot
// ---- deterministically reach (device-resident split legs, lone prefetch).

namespace {

/// A full per-query execution stack without a planner, so tests can feed
/// hand-built steps straight into StepExecutor::run.
struct ManualExec {
  explicit ManualExec(const index::InvertedIndex& idx,
                      const fault::FaultConfig& faults)
      : gpu(idx, sim::HardwareSpec{}, core::HybridOptions{}.gpu),
        host_cache(core::HybridOptions{}.cpu.decoded_cache_bytes),
        svs(idx, sim::HardwareSpec{}.cpu, cpu::SvsOptions{}, &host_cache),
        scorer(idx, cpu::Bm25Params{}),
        injector(faults),
        exec(sim::HardwareSpec{}.cpu, &svs, &gpu, scorer, &injector, 0) {}

  gpu::GpuExecutor gpu;
  cpu::DecodedCache host_cache;
  cpu::SvsStepper svs;
  cpu::Bm25Scorer scorer;
  fault::FaultInjector injector;
  core::StepExecutor exec;
};

}  // namespace

TEST(FaultEngine, SplitLegFaultOverDeviceResidentProbes) {
  const auto& idx = testutil::small_index();
  core::Query q;
  q.terms = {5, 15, 30};
  q.id = 0;

  // A probabilistic schedule that misses the first (kGpu) step and hits the
  // second (kSplit) one — found by scanning seeds, so the fault lands while
  // the intermediate is device-resident.
  fault::FaultConfig cfg;
  cfg.gpu.probability = 0.5;
  for (cfg.seed = 1;; ++cfg.seed) {
    const fault::FaultInjector probe(cfg);
    if (!probe.gpu_step_fault(0, q.id, 0) &&
        probe.gpu_step_fault(0, q.id, 1)) {
      break;
    }
  }

  ManualExec me(idx, cfg);
  core::QueryResult res;
  me.exec.begin_query(q);

  core::IntersectStep first;
  first.term = idx.list(5).size() < idx.list(15).size() ? 15 : 5;
  first.probe_term = first.term == 15 ? 5 : 15;
  first.first_pair = true;
  first.where = core::Placement::kGpu;
  ASSERT_EQ(me.exec.run(first, q, res), core::StepStatus::kOk);
  ASSERT_EQ(me.exec.location(), core::Placement::kGpu);
  ASSERT_GT(me.exec.intermediate_count(), 0u);

  core::IntersectStep split;
  split.term = 30;
  split.where = core::Placement::kSplit;
  split.alpha = 0.5;
  EXPECT_EQ(me.exec.run(split, q, res), core::StepStatus::kOkForceCpu);
  // The step completed host-side despite losing its GPU leg: the whole
  // device intermediate was drained and both ranges redone on the CPU.
  EXPECT_EQ(me.exec.location(), core::Placement::kCpu);
  EXPECT_EQ(res.metrics.faults.split_leg_faults, 1u);
  EXPECT_EQ(res.metrics.faults.gpu_faults, 1u);
  EXPECT_EQ(res.metrics.faults.gpu_wasted,
            sim::Duration::from_us(cfg.gpu_fault_cost_us));

  EXPECT_EQ(me.exec.run(core::RankStep{}, q, res), core::StepStatus::kOk);
  me.exec.finish_query(res.metrics);
  expect_stage_identity(res.metrics);

  // The survived-leg record counts as a normal (leg-flagged) step, not an
  // abandoned one.
  core::TraceSummary sum;
  sum.add(res.trace);
  EXPECT_EQ(sum.leg_faulted_steps, 1u);
  EXPECT_EQ(sum.faulted_steps, 0u);
  EXPECT_EQ(sum.split_intersects, 1u);

  const auto want = testutil::reference_topk(idx, q);
  testutil::expect_same_topk(res.topk, want, "split-leg-device");
}

TEST(FaultEngine, FaultedPrefetchIsDroppedWithoutPoisoningTheCache) {
  const auto& idx = testutil::small_index();
  core::Query q;
  q.terms = {5, 15, 30};
  q.id = 0;

  fault::FaultConfig cfg;
  cfg.gpu.triggers.push_back({/*query=*/0, /*scope=*/0});
  ManualExec me(idx, cfg);
  core::QueryResult res;
  me.exec.begin_query(q);

  // CPU steps never draw gpu-site coordinates; only the prefetch does.
  core::IntersectStep first;
  first.term = idx.list(5).size() < idx.list(15).size() ? 15 : 5;
  first.probe_term = first.term == 15 ? 5 : 15;
  first.first_pair = true;
  first.where = core::Placement::kCpu;
  ASSERT_EQ(me.exec.run(first, q, res), core::StepStatus::kOk);

  ASSERT_EQ(me.exec.run(core::PrefetchStep{30}, q, res),
            core::StepStatus::kOk);
  EXPECT_EQ(res.metrics.faults.prefetch_faults, 1u);
  EXPECT_FALSE(me.exec.prefetched(30));       // never went in flight
  EXPECT_FALSE(me.exec.device_resident(30));  // never entered the cache
  EXPECT_EQ(res.metrics.overlap.prefetch_issued, 0u);

  // The drop is a zero-duration faulted record: nothing was charged.
  ASSERT_EQ(res.trace.size(), 2u);
  EXPECT_TRUE(res.trace[1].faulted);
  EXPECT_EQ(res.trace[1].kind, core::StepKind::kPrefetch);
  EXPECT_EQ(res.trace[1].duration, sim::Duration());

  core::IntersectStep next;
  next.term = 30;
  next.where = core::Placement::kCpu;
  ASSERT_EQ(me.exec.run(next, q, res), core::StepStatus::kOk);
  ASSERT_EQ(me.exec.run(core::RankStep{}, q, res), core::StepStatus::kOk);
  me.exec.finish_query(res.metrics);
  expect_stage_identity(res.metrics);

  const auto want = testutil::reference_topk(idx, q);
  testutil::expect_same_topk(res.topk, want, "prefetch-drop");
}

TEST(FaultEngine, PcieErrorsDuringChunkedPrefetchUploadAreRetried) {
  // Satellite contract: a PCIe error in the middle of a chunked,
  // double-buffered prefetch upload re-pays the failed DMA (bounded retry)
  // and the prefetch machinery's salvage accounting stays conserved.
  const auto& idx = testutil::small_index();
  core::HybridOptions opt = gpu_heavy_options();  // prefetch + chunking on
  opt.faults.pcie.triggers.push_back({/*query=*/0, /*scope=*/0});

  core::Query q;
  q.terms = {5, 15, 30};
  q.id = 0;
  core::HybridEngine faulty(idx, {}, opt);
  core::HybridEngine clean(idx, {}, gpu_heavy_options());
  const auto res = faulty.execute(q);
  const auto ref = clean.execute(q);

  // The plan actually issued a prefetch, and every upload DMA (the
  // prefetch's included) failed its first attempt.
  EXPECT_GT(res.metrics.overlap.prefetch_issued, 0u);
  EXPECT_GT(res.metrics.faults.pcie_errors, 0u);
  EXPECT_GT(res.metrics.faults.pcie_retry_time.ps(), 0);
  EXPECT_EQ(res.metrics.transfer,
            ref.metrics.transfer + res.metrics.faults.pcie_retry_time);
  // Salvage conservation: every issued prefetch is either consumed by a
  // later device step or dropped (and counted) at query end.
  EXPECT_EQ(res.metrics.overlap.prefetch_issued,
            res.metrics.overlap.prefetch_used +
                res.metrics.overlap.prefetch_dropped);
  expect_stage_identity(res.metrics);

  ASSERT_EQ(res.topk.size(), ref.topk.size());
  for (std::size_t i = 0; i < ref.topk.size(); ++i) {
    EXPECT_EQ(res.topk[i].doc, ref.topk[i].doc);
    EXPECT_EQ(res.topk[i].score, ref.topk[i].score);
  }
}

TEST(FaultEngine, HybridPolicyDegradesMidQuery) {
  // Under the paper's ratio policy (not the pinned kAlwaysGpu), a fault on
  // a GPU-started query must still finish on the CPU with the right answer.
  const auto& idx = testutil::large_index();
  core::HybridOptions opt;
  opt.faults.gpu.triggers.push_back({/*query=*/0, /*scope=*/0});

  core::Query q;
  q.terms = {10, 11, 0};  // GPU start (balanced pair), then a huge list
  q.id = 0;
  core::HybridEngine engine(idx, {}, opt);
  const auto res = engine.execute(q);
  EXPECT_EQ(res.metrics.faults.gpu_faults, 1u);
  const auto want = testutil::reference_topk(idx, q);
  testutil::expect_same_topk(res.topk, want, "hybrid-degrade");
  expect_stage_identity(res.metrics);
}
