// Engine-level fault handling (DESIGN.md §11): an injected GPU device fault
// abandons the step, charges the wasted device time, and re-plans the rest
// of the query on the CPU — with bit-identical results; an injected PCIe
// error re-pays the transfer (bounded retry) and never corrupts data. And
// the golden-parity invariant: an armed injector whose faults never fire
// perturbs nothing.
#include <gtest/gtest.h>

#include "core/hybrid_engine.h"
#include "engine_test_util.h"

using namespace griffin;

namespace {

core::HybridOptions gpu_heavy_options() {
  core::HybridOptions opt;
  // Pin every schedulable step to the GPU so fault sites are guaranteed to
  // be exercised; the fault path must still fall back to the CPU.
  opt.scheduler.policy = core::SchedulerPolicy::kAlwaysGpu;
  return opt;
}

void expect_stage_identity(const core::QueryMetrics& m) {
  EXPECT_EQ(m.decode + m.intersect + m.transfer + m.rank,
            m.total + m.overlap.saved);
}

}  // namespace

TEST(FaultEngine, ArmedButSilentInjectorIsBitIdentical) {
  const auto& idx = testutil::small_index();
  core::HybridOptions plain = gpu_heavy_options();
  core::HybridOptions armed = gpu_heavy_options();
  // Armed sites (the injector is consulted) whose scripted faults point at
  // a query id the log never reaches: every decision returns false, and
  // the run must be bit-identical to one with no injector wired at all.
  armed.faults.gpu.triggers.push_back({/*query=*/999999, /*scope=*/0});
  armed.faults.pcie.triggers.push_back({/*query=*/999999, /*scope=*/0});

  core::HybridEngine a(idx, {}, plain);
  core::HybridEngine b(idx, {}, armed);

  workload::QueryLogConfig qcfg;
  qcfg.num_queries = 40;
  qcfg.seed = 81;
  const auto log = workload::generate_query_log(
      qcfg, static_cast<std::uint32_t>(idx.num_terms()));
  for (const auto& q : log) {
    const auto ra = a.execute(q);
    const auto rb = b.execute(q);
    EXPECT_EQ(ra.metrics.total, rb.metrics.total);
    EXPECT_EQ(ra.metrics.decode, rb.metrics.decode);
    EXPECT_EQ(ra.metrics.transfer, rb.metrics.transfer);
    EXPECT_EQ(ra.metrics.gpu_kernels, rb.metrics.gpu_kernels);
    EXPECT_EQ(ra.trace.size(), rb.trace.size());
    EXPECT_FALSE(rb.metrics.faults.any());
    testutil::expect_same_topk(ra.topk, rb.topk, "armed-silent");
  }
}

TEST(FaultEngine, GpuFaultDegradesToCpuWithIdenticalResults) {
  const auto& idx = testutil::small_index();
  core::HybridOptions opt = gpu_heavy_options();
  opt.faults.gpu.triggers.push_back({/*query=*/0, /*scope=*/0});

  core::Query q;
  q.terms = {5, 15, 30};
  q.id = 0;

  core::HybridEngine faulty(idx, {}, opt);
  const auto res = faulty.execute(q);

  // Exactly one abandoned step: after the fault the whole remainder is
  // forced onto the CPU, so the (every-step) trigger never fires again.
  EXPECT_EQ(res.metrics.faults.gpu_faults, 1u);
  EXPECT_EQ(res.metrics.faults.gpu_wasted,
            sim::Duration::from_us(opt.faults.gpu_fault_cost_us));
  for (const auto p : res.metrics.placements) {
    EXPECT_EQ(p, core::Placement::kCpu);
  }

  // The wasted time is a real trace record, flagged and summarized.
  core::TraceSummary sum;
  sum.add(res.trace);
  EXPECT_EQ(sum.faulted_steps, 1u);
  EXPECT_EQ(sum.gpu_intersects, 0u);
  bool saw_faulted = false;
  for (const auto& r : res.trace) {
    if (r.faulted) {
      saw_faulted = true;
      EXPECT_EQ(r.placement, core::Placement::kGpu);
      EXPECT_EQ(r.duration,
                sim::Duration::from_us(opt.faults.gpu_fault_cost_us));
    }
  }
  EXPECT_TRUE(saw_faulted);
  expect_stage_identity(res.metrics);

  // Bit-identical answer to the reference and to a fault-free engine.
  const auto want = testutil::reference_topk(idx, q);
  testutil::expect_same_topk(res.topk, want, "gpu-fault");
  core::HybridEngine clean(idx, {}, gpu_heavy_options());
  const auto ref = clean.execute(q);
  ASSERT_EQ(res.topk.size(), ref.topk.size());
  for (std::size_t i = 0; i < ref.topk.size(); ++i) {
    EXPECT_EQ(res.topk[i].doc, ref.topk[i].doc);
    EXPECT_EQ(res.topk[i].score, ref.topk[i].score);  // bit-exact
  }
  // The wasted device time is part of the query's latency.
  EXPECT_GE(res.metrics.total, res.metrics.faults.gpu_wasted);
}

TEST(FaultEngine, GpuFaultOnSingleTermQuery) {
  const auto& idx = testutil::small_index();
  core::HybridOptions opt = gpu_heavy_options();
  opt.faults.gpu.triggers.push_back({/*query=*/7, /*scope=*/0});

  core::Query q;
  q.terms = {12};
  q.id = 7;
  core::HybridEngine engine(idx, {}, opt);
  const auto res = engine.execute(q);
  EXPECT_EQ(res.metrics.faults.gpu_faults, 1u);
  const auto want = testutil::reference_topk(idx, q);
  testutil::expect_same_topk(res.topk, want, "gpu-fault-decode");
  expect_stage_identity(res.metrics);
}

TEST(FaultEngine, GpuFaultScopeGatesTheTrigger) {
  const auto& idx = testutil::small_index();
  core::HybridOptions opt = gpu_heavy_options();
  opt.faults.gpu.triggers.push_back({/*query=*/0, /*scope=*/3});
  opt.fault_scope = 1;  // this engine is not scope 3

  core::Query q;
  q.terms = {5, 15};
  core::HybridEngine engine(idx, {}, opt);
  const auto res = engine.execute(q);
  EXPECT_EQ(res.metrics.faults.gpu_faults, 0u);
  EXPECT_FALSE(res.metrics.faults.any());
}

TEST(FaultEngine, PcieErrorsRetryAndRepayTransferTime) {
  const auto& idx = testutil::small_index();
  core::HybridOptions opt = gpu_heavy_options();
  opt.faults.pcie.triggers.push_back({/*query=*/0, /*scope=*/0});

  core::Query q;
  q.terms = {5, 15, 30};
  q.id = 0;

  core::HybridEngine faulty(idx, {}, opt);
  core::HybridEngine clean(idx, {}, gpu_heavy_options());
  const auto res = faulty.execute(q);
  const auto ref = clean.execute(q);

  // Every transfer's first attempt failed and was retried: errors counted,
  // the re-paid time visible in both the counter and the transfer stage.
  EXPECT_GT(res.metrics.faults.pcie_errors, 0u);
  EXPECT_GT(res.metrics.faults.pcie_retry_time.ps(), 0);
  EXPECT_EQ(res.metrics.transfer,
            ref.metrics.transfer + res.metrics.faults.pcie_retry_time);
  EXPECT_EQ(res.metrics.faults.gpu_faults, 0u);
  expect_stage_identity(res.metrics);

  // Retries are timing-only: the answer is bit-identical.
  ASSERT_EQ(res.topk.size(), ref.topk.size());
  for (std::size_t i = 0; i < ref.topk.size(); ++i) {
    EXPECT_EQ(res.topk[i].doc, ref.topk[i].doc);
    EXPECT_EQ(res.topk[i].score, ref.topk[i].score);
  }
}

TEST(FaultEngine, PcieRetryCountIsBoundedPerTransfer) {
  const auto& idx = testutil::small_index();
  core::HybridOptions opt = gpu_heavy_options();
  opt.faults.pcie.probability = 1.0;  // every attempt fails...
  opt.faults.pcie_max_retries = 2;    // ...but the link gives up retrying

  core::Query q;
  q.terms = {5, 15};
  core::HybridEngine engine(idx, {}, opt);
  const auto res = engine.execute(q);
  EXPECT_GT(res.metrics.faults.pcie_errors, 0u);

  core::HybridEngine clean(idx, {}, gpu_heavy_options());
  const auto ref = clean.execute(q);
  // Worst case pays exactly max_retries extra copies of the clean transfer
  // time (p = 1 makes the worst case the only case).
  EXPECT_EQ(res.metrics.transfer, ref.metrics.transfer * 3.0);
  testutil::expect_same_topk(res.topk, ref.topk, "pcie-bounded");
}

TEST(FaultEngine, ProbabilisticFaultsPreserveCorrectnessOverALog) {
  const auto& idx = testutil::small_index();
  core::HybridOptions opt = gpu_heavy_options();
  opt.faults.gpu.probability = 0.15;
  opt.faults.pcie.probability = 0.02;
  opt.faults.seed = 2026;

  core::HybridEngine engine(idx, {}, opt);
  workload::QueryLogConfig qcfg;
  qcfg.num_queries = 60;
  qcfg.seed = 82;
  const auto log = workload::generate_query_log(
      qcfg, static_cast<std::uint32_t>(idx.num_terms()));

  fault::FaultCounters total;
  for (const auto& q : log) {
    const auto res = engine.execute(q);
    total += res.metrics.faults;
    expect_stage_identity(res.metrics);
    const auto want = testutil::reference_topk(idx, q);
    testutil::expect_same_topk(res.topk, want, "probabilistic");
  }
  // The sweep actually exercised both fault sites.
  EXPECT_GT(total.gpu_faults, 0u);
  EXPECT_GT(total.pcie_errors, 0u);
  EXPECT_GT(total.gpu_wasted.ps(), 0);
}

TEST(FaultEngine, FaultRunsAreDeterministic) {
  const auto& idx = testutil::small_index();
  core::HybridOptions opt = gpu_heavy_options();
  opt.faults.gpu.probability = 0.2;
  opt.faults.pcie.probability = 0.05;
  opt.faults.seed = 5;

  workload::QueryLogConfig qcfg;
  qcfg.num_queries = 30;
  qcfg.seed = 83;
  const auto log = workload::generate_query_log(
      qcfg, static_cast<std::uint32_t>(idx.num_terms()));

  core::HybridEngine a(idx, {}, opt);
  core::HybridEngine b(idx, {}, opt);
  for (const auto& q : log) {
    const auto ra = a.execute(q);
    const auto rb = b.execute(q);
    EXPECT_EQ(ra.metrics.total, rb.metrics.total);
    EXPECT_EQ(ra.metrics.faults.gpu_faults, rb.metrics.faults.gpu_faults);
    EXPECT_EQ(ra.metrics.faults.pcie_errors, rb.metrics.faults.pcie_errors);
    EXPECT_EQ(ra.metrics.faults.gpu_wasted, rb.metrics.faults.gpu_wasted);
    EXPECT_EQ(ra.trace.size(), rb.trace.size());
  }
}

TEST(FaultEngine, HybridPolicyDegradesMidQuery) {
  // Under the paper's ratio policy (not the pinned kAlwaysGpu), a fault on
  // a GPU-started query must still finish on the CPU with the right answer.
  const auto& idx = testutil::large_index();
  core::HybridOptions opt;
  opt.faults.gpu.triggers.push_back({/*query=*/0, /*scope=*/0});

  core::Query q;
  q.terms = {10, 11, 0};  // GPU start (balanced pair), then a huge list
  q.id = 0;
  core::HybridEngine engine(idx, {}, opt);
  const auto res = engine.execute(q);
  EXPECT_EQ(res.metrics.faults.gpu_faults, 1u);
  const auto want = testutil::reference_topk(idx, q);
  testutil::expect_same_topk(res.topk, want, "hybrid-degrade");
  expect_stage_identity(res.metrics);
}
