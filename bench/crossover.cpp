// Figure 8 — the GPU/CPU crossover by list-length ratio. Pairs are grouped
// by ratio ([1,16), [16,32), ..., [512,1024)) with the longer list in
// [1M, 2M], exactly as §3.2 describes. Each pair becomes a two-term
// micro-index and runs through the real engines; the timed quantity is the
// steady-state pairwise step (intermediate result already resident on the
// executing processor), read from the engines' recorded plans:
//   CPU: merge below the skip threshold, skip-pointer search above;
//   GPU: Para-EF + MergePath below the path threshold (128), parallel
//        binary search with selective block transfer at/above.
// To make the engines' *second* intersect step exactly that steady-state
// step, the shorter list is indexed twice: step 1 intersects it with itself
// (identity), leaving it as the resident intermediate for step 2 against
// the longer list — the step this figure measures, taken from the second
// IntersectStep record of QueryResult::trace.
// The paper's observation: GPU wins while ratio < ~128 (the block size),
// CPU above — which is the rule Griffin's scheduler applies.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/hybrid_engine.h"

using namespace griffin;

namespace {

/// The n-th (1-based) intersect record of a recorded plan.
const core::StepRecord* nth_intersect(const std::vector<core::StepRecord>& t,
                                      int n) {
  int seen = 0;
  for (const auto& r : t) {
    if (r.kind == core::StepKind::kIntersect && ++seen == n) return &r;
  }
  return nullptr;
}

/// Builds the pair micro-index: term 0 and 1 are the shorter list (so the
/// first step's output *is* the shorter list), term 2 the longer.
index::InvertedIndex make_pair_index(const workload::ListPair& pair,
                                     index::DocId universe) {
  index::InvertedIndex idx(codec::Scheme::kEliasFano);
  idx.docs().resize(universe);
  idx.add_list(pair.shorter);
  idx.add_list(pair.shorter);
  idx.add_list(pair.longer);
  return idx;
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 8: GPU/CPU Cross-Over Point by List-Length Ratio",
      "GPU faster while ratio < ~128 (the block size); CPU above");

  util::Xoshiro256 rng(808);
  const int pairs_per_group = bench::fast_mode() ? 1 : 3;
  const std::uint64_t longer_size = bench::fast_mode() ? 400'000 : 1'500'000;
  const index::DocId universe = 48'000'000;

  struct Group {
    double lo, hi;
  };
  const std::vector<Group> groups{{1, 16},   {16, 32},   {32, 64},
                                  {64, 128}, {128, 256}, {256, 512},
                                  {512, 1024}};

  std::printf("%-12s %12s %12s %12s %12s %10s %10s\n", "ratio group",
              "CPU (ms)", "GPU (ms)", "GPUpipe(ms)", "GPU xfer", "winner",
              "pipe-win");
  bench::Json rows = bench::Json::array();
  int crossover_group = -1;
  int pipelined_crossover_group = -1;
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    const double mid = std::sqrt(groups[gi].lo * groups[gi].hi);
    double cpu_ms = 0.0, gpu_ms = 0.0, gpu_pipe_ms = 0.0, gpu_xfer_ms = 0.0;
    for (int p = 0; p < pairs_per_group; ++p) {
      const auto pair =
          workload::make_pair_with_ratio(longer_size, mid, universe, 0.4, rng);
      const auto idx = make_pair_index(pair, universe);
      core::Query q;
      q.terms = {0, 1, 2};
      q.k = 10;

      cpu::CpuEngine cpu_engine(idx);
      const auto cpu_res = cpu_engine.execute(q);
      const auto* cpu_step = nth_intersect(cpu_res.trace, 2);

      // Figure 8 measures the paper's baseline GPU path: per-step device
      // allocation and no cross-query list cache (§2.3's handicap — the
      // very overheads the λ=128 rule balances against the CPU's skip
      // advantage). The serving engines pool memory by default; turn that
      // off here to reproduce the figure's conditions.
      gpu::GpuOptions gopt;
      gopt.pooled_memory = false;
      gopt.list_cache = false;
      gpu::GpuEngine gpu_engine(idx, {}, gopt);
      const auto gpu_res = gpu_engine.execute(q);
      const auto* gpu_step = nth_intersect(gpu_res.trace, 2);

      if (cpu_step == nullptr || gpu_step == nullptr) {
        std::fprintf(stderr, "[crossover] missing step record, skipping\n");
        continue;
      }
      cpu_ms += cpu_step->duration.ms();
      gpu_ms += gpu_step->duration.ms();
      // Pipelined step time: the step's wall-clock span on the timeline
      // (first issue to last completion) — double-buffered H2D chunks ride
      // under the decode kernels, so this is below the serial duration in
      // the copy-bound regimes (DESIGN.md §10).
      gpu_pipe_ms += (gpu_step->end - gpu_step->issue).ms();
      gpu_xfer_ms += gpu_step->transfer.ms();
    }
    cpu_ms /= pairs_per_group;
    gpu_ms /= pairs_per_group;
    gpu_pipe_ms /= pairs_per_group;
    gpu_xfer_ms /= pairs_per_group;
    const bool cpu_wins = cpu_ms < gpu_ms;
    const bool cpu_wins_pipelined = cpu_ms < gpu_pipe_ms;
    if (cpu_wins && crossover_group < 0) {
      crossover_group = static_cast<int>(gi);
    }
    if (cpu_wins_pipelined && pipelined_crossover_group < 0) {
      pipelined_crossover_group = static_cast<int>(gi);
    }
    std::printf("[%4.0f,%4.0f) %12.3f %12.3f %12.3f %12.3f %10s %10s\n",
                groups[gi].lo, groups[gi].hi, cpu_ms, gpu_ms, gpu_pipe_ms,
                gpu_xfer_ms, cpu_wins ? "CPU" : "GPU",
                cpu_wins_pipelined ? "CPU" : "GPU");

    bench::Json row = bench::Json::object();
    row["ratio_lo"] = groups[gi].lo;
    row["ratio_hi"] = groups[gi].hi;
    row["cpu_ms"] = cpu_ms;
    row["gpu_ms"] = gpu_ms;
    row["gpu_pipelined_ms"] = gpu_pipe_ms;
    row["gpu_transfer_ms"] = gpu_xfer_ms;
    row["winner"] = cpu_wins ? "cpu" : "gpu";
    row["pipelined_winner"] = cpu_wins_pipelined ? "cpu" : "gpu";
    rows.push_back(std::move(row));
  }
  if (crossover_group >= 0) {
    std::printf("\nMeasured crossover enters group [%.0f,%.0f) — paper: 128.\n",
                groups[crossover_group].lo, groups[crossover_group].hi);
  } else {
    std::printf("\nNo crossover within the swept ratios.\n");
  }
  if (pipelined_crossover_group >= 0) {
    std::printf("With copy/compute overlap the crossover shifts to "
                "[%.0f,%.0f).\n",
                groups[pipelined_crossover_group].lo,
                groups[pipelined_crossover_group].hi);
  } else {
    std::printf("With copy/compute overlap the GPU wins every swept group.\n");
  }

  bench::Json root = bench::Json::object();
  root["bench"] = "crossover";
  root["fast_mode"] = bench::fast_mode();
  root["longer_size"] = longer_size;
  root["groups"] = std::move(rows);
  root["crossover_group"] = crossover_group;
  root["pipelined_crossover_group"] = pipelined_crossover_group;
  bench::write_bench_json("crossover", root);
  return 0;
}
