// Figure 8 — the GPU/CPU crossover by list-length ratio. Pairs are grouped
// by ratio ([1,16), [16,32), ..., [512,1024)) with the longer list in
// [1M, 2M], exactly as §3.2 describes. For each pair we time one pairwise
// intersection step the way each engine would run it:
//   CPU: merge below the skip threshold, skip-pointer search above;
//   GPU: Para-EF + MergePath below the path threshold (128), parallel
//        binary search with selective block transfer at/above.
// The paper's observation: GPU wins while ratio < ~128 (the block size),
// CPU above — which is the rule Griffin's scheduler applies.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "cpu/decode.h"
#include "cpu/intersect.h"
#include "gpu/binary_intersect.h"
#include "gpu/ef_decode.h"
#include "gpu/mergepath.h"
#include "util/rng.h"

using namespace griffin;

namespace {

const sim::HardwareSpec hw;
const sim::GpuCostModel gpu_model(hw.gpu);
const pcie::Link link_model(hw.pcie);

/// CPU step time (the CpuEngine's per-step policy: skip_ratio 32).
double cpu_step_ms(std::span<const index::DocId> shorter,
                   const codec::BlockCompressedList& longer, double ratio) {
  sim::CpuCostAccumulator acc(hw.cpu);
  std::vector<index::DocId> out;
  if (ratio >= 32.0) {
    cpu::skip_intersect(shorter, longer, out, acc);
  } else {
    cpu::merge_intersect(shorter, longer, out, acc);
  }
  return acc.time().ms();
}

/// GPU step time, intermediate result already device-resident (the steady
/// state of a query running on Griffin-GPU).
double gpu_step_ms(std::span<const index::DocId> shorter,
                   const codec::BlockCompressedList& longer, double ratio) {
  simt::Device dev(hw.gpu, hw.pcie.device_mem_bytes);
  pcie::TransferLedger led;
  auto probes = dev.alloc<index::DocId>(shorter.size());
  dev.upload(probes, shorter);  // intermediate already on device: no charge
  sim::Duration total;
  if (ratio < 128.0) {
    pcie::TransferLedger l2;
    gpu::DeviceList dl = gpu::upload_list(dev, longer, link_model, l2);
    auto decoded = dev.alloc<index::DocId>(longer.size());
    l2.add_alloc(link_model);
    total += gpu_model.kernel_time(
        gpu::ef_decode_range(dev, dl, 0, dl.num_blocks(), decoded));
    auto r = gpu::mergepath_intersect(dev, probes, shorter.size(), decoded,
                                      longer.size(), link_model, l2);
    total += gpu_model.kernel_time(r.stats) + l2.total;
  } else {
    pcie::TransferLedger l2;
    gpu::DeviceList dl = gpu::upload_list(dev, longer, link_model, l2, true);
    auto r = gpu::binary_search_intersect(dev, probes, shorter.size(), dl,
                                          link_model, l2, true);
    total += gpu_model.kernel_time(r.stats) + l2.total;
  }
  return total.ms();
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 8: GPU/CPU Cross-Over Point by List-Length Ratio",
      "GPU faster while ratio < ~128 (the block size); CPU above");

  util::Xoshiro256 rng(808);
  const int pairs_per_group = bench::fast_mode() ? 1 : 3;
  const std::uint64_t longer_size = bench::fast_mode() ? 400'000 : 1'500'000;

  struct Group {
    double lo, hi;
  };
  const std::vector<Group> groups{{1, 16},   {16, 32},   {32, 64},
                                  {64, 128}, {128, 256}, {256, 512},
                                  {512, 1024}};

  std::printf("%-12s %12s %12s %10s\n", "ratio group", "CPU (ms)", "GPU (ms)",
              "winner");
  int crossover_group = -1;
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    const double mid = std::sqrt(groups[gi].lo * groups[gi].hi);
    double cpu_ms = 0.0, gpu_ms = 0.0;
    for (int p = 0; p < pairs_per_group; ++p) {
      const auto pair = workload::make_pair_with_ratio(
          longer_size, mid, 48'000'000, 0.4, rng);
      const auto longer = codec::BlockCompressedList::build(
          pair.longer, codec::Scheme::kEliasFano);
      const double ratio = static_cast<double>(pair.longer.size()) /
                           static_cast<double>(pair.shorter.size());
      cpu_ms += cpu_step_ms(pair.shorter, longer, ratio);
      gpu_ms += gpu_step_ms(pair.shorter, longer, ratio);
    }
    cpu_ms /= pairs_per_group;
    gpu_ms /= pairs_per_group;
    const bool cpu_wins = cpu_ms < gpu_ms;
    if (cpu_wins && crossover_group < 0) {
      crossover_group = static_cast<int>(gi);
    }
    std::printf("[%4.0f,%4.0f) %12.3f %12.3f %10s\n", groups[gi].lo,
                groups[gi].hi, cpu_ms, gpu_ms, cpu_wins ? "CPU" : "GPU");
  }
  if (crossover_group >= 0) {
    std::printf("\nMeasured crossover enters group [%.0f,%.0f) — paper: 128.\n",
                groups[crossover_group].lo, groups[crossover_group].hi);
  } else {
    std::printf("\nNo crossover within the swept ratios.\n");
  }
  return 0;
}
