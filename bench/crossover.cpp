// Figure 8 — the GPU/CPU crossover by list-length ratio. Pairs are grouped
// by ratio ([1,16), [16,32), ..., [512,1024)) with the longer list in
// [1M, 2M], exactly as §3.2 describes. Each pair becomes a two-term
// micro-index and runs through the real engines; the timed quantity is the
// steady-state pairwise step (intermediate result already resident on the
// executing processor), read from the engines' recorded plans:
//   CPU: merge below the skip threshold, skip-pointer search above;
//   GPU: Para-EF + MergePath below the path threshold (128), parallel
//        binary search with selective block transfer at/above.
// To make the engines' *second* intersect step exactly that steady-state
// step, the shorter list is indexed twice: step 1 intersects it with itself
// (identity), leaving it as the resident intermediate for step 2 against
// the longer list — the step this figure measures, taken from the second
// IntersectStep record of QueryResult::trace.
// The paper's observation: GPU wins while ratio < ~128 (the block size),
// CPU above — which is the rule Griffin's scheduler applies.
//
// The sweep additionally re-derives the crossover per CPU vector preset
// (DESIGN.md §13): the same pairs run through the scalar baseline, the
// paper testbed's SSE4 unit, and a modern AVX2 profile. A vectorized CPU
// pulls the measured crossover *down* from the scalar [256,512) — it wins
// more of the ratio spectrum — and the JSON records both the measured
// per-preset crossover and the scheduler's analytic threshold
// (128 x crossover_scale) alongside the modeled full-decode speedup.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "codec/codec.h"
#include "core/hybrid_engine.h"
#include "core/scheduler.h"
#include "cpu/decode.h"
#include "cpu/simd_cost.h"

using namespace griffin;

namespace {

/// The n-th (1-based) intersect record of a recorded plan.
const core::StepRecord* nth_intersect(const std::vector<core::StepRecord>& t,
                                      int n) {
  int seen = 0;
  for (const auto& r : t) {
    if (r.kind == core::StepKind::kIntersect && ++seen == n) return &r;
  }
  return nullptr;
}

/// Builds the pair micro-index: term 0 and 1 are the shorter list (so the
/// first step's output *is* the shorter list), term 2 the longer.
index::InvertedIndex make_pair_index(const workload::ListPair& pair,
                                     index::DocId universe) {
  index::InvertedIndex idx(codec::Scheme::kEliasFano);
  idx.docs().resize(universe);
  idx.add_list(pair.shorter);
  idx.add_list(pair.shorter);
  idx.add_list(pair.longer);
  return idx;
}

struct Preset {
  const char* name;
  sim::CpuSpec spec;
};

/// Modeled decode_all time of `list` under `spec` (the Figure 12 quantity:
/// full decompression including materialization).
double decode_ms(const codec::BlockCompressedList& list,
                 const sim::CpuSpec& spec) {
  sim::CpuCostAccumulator acc(spec);
  std::vector<codec::DocId> out;
  cpu::decode_all(list, out, acc);
  return acc.time().ms();
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 8: GPU/CPU Cross-Over Point by List-Length Ratio",
      "GPU faster while ratio < ~128 (the block size); CPU above");

  util::Xoshiro256 rng(808);
  const int pairs_per_group = bench::fast_mode() ? 1 : 3;
  const std::uint64_t longer_size = bench::fast_mode() ? 400'000 : 1'500'000;
  const index::DocId universe = 48'000'000;

  const std::vector<Preset> presets{{"scalar", sim::CpuSpec{}},
                                    {"sse4", sim::CpuSpec::sse4_testbed()},
                                    {"avx2", sim::CpuSpec::modern_avx2()}};

  struct Group {
    double lo, hi;
  };
  const std::vector<Group> groups{{1, 16},   {16, 32},   {32, 64},
                                  {64, 128}, {128, 256}, {256, 512},
                                  {512, 1024}};

  std::printf("%-12s %11s %11s %11s %11s %11s %8s %8s %8s\n", "ratio group",
              "CPU (ms)", "SSE4 (ms)", "AVX2 (ms)", "GPU (ms)", "GPUpipe(ms)",
              "scalar", "sse4", "avx2");
  bench::Json rows = bench::Json::array();
  std::vector<int> crossover_group(presets.size(), -1);
  int pipelined_crossover_group = -1;
  // Modeled full-decode speedup per preset (the Figure 12 quantity), on one
  // representative long list from the sweep.
  std::vector<double> decode_speedup(presets.size(), 1.0);
  bool measured_decode = false;

  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    const double mid = std::sqrt(groups[gi].lo * groups[gi].hi);
    std::vector<double> cpu_ms(presets.size(), 0.0);
    std::vector<double> cpu_util(presets.size(), 0.0);
    double gpu_ms = 0.0, gpu_pipe_ms = 0.0, gpu_xfer_ms = 0.0;
    for (int p = 0; p < pairs_per_group; ++p) {
      const auto pair =
          workload::make_pair_with_ratio(longer_size, mid, universe, 0.4, rng);
      const auto idx = make_pair_index(pair, universe);
      core::Query q;
      q.terms = {0, 1, 2};
      q.k = 10;

      if (!measured_decode) {
        // One long list stands in for Figure 12's full-decode sweep: same
        // list, scalar vs vectorized charges (output bit-identical).
        const auto& list = idx.list(2).docids;
        const double scalar_ms = decode_ms(list, presets[0].spec);
        for (std::size_t pi = 0; pi < presets.size(); ++pi) {
          decode_speedup[pi] = scalar_ms / decode_ms(list, presets[pi].spec);
        }
        measured_decode = true;
      }

      for (std::size_t pi = 0; pi < presets.size(); ++pi) {
        cpu::CpuEngine cpu_engine(idx, presets[pi].spec);
        const auto cpu_res = cpu_engine.execute(q);
        const auto* cpu_step = nth_intersect(cpu_res.trace, 2);
        if (cpu_step == nullptr) {
          std::fprintf(stderr, "[crossover] missing CPU step record\n");
          continue;
        }
        cpu_ms[pi] += cpu_step->duration.ms();
        cpu_util[pi] += cpu_step->simd.utilization();
      }

      // Figure 8 measures the paper's baseline GPU path: per-step device
      // allocation and no cross-query list cache (§2.3's handicap — the
      // very overheads the λ=128 rule balances against the CPU's skip
      // advantage). The serving engines pool memory by default; turn that
      // off here to reproduce the figure's conditions.
      gpu::GpuOptions gopt;
      gopt.pooled_memory = false;
      gopt.list_cache = false;
      gpu::GpuEngine gpu_engine(idx, {}, gopt);
      const auto gpu_res = gpu_engine.execute(q);
      const auto* gpu_step = nth_intersect(gpu_res.trace, 2);

      if (gpu_step == nullptr) {
        std::fprintf(stderr, "[crossover] missing GPU step record, skipping\n");
        continue;
      }
      gpu_ms += gpu_step->duration.ms();
      // Pipelined step time: the step's wall-clock span on the timeline
      // (first issue to last completion) — double-buffered H2D chunks ride
      // under the decode kernels, so this is below the serial duration in
      // the copy-bound regimes (DESIGN.md §10).
      gpu_pipe_ms += (gpu_step->end - gpu_step->issue).ms();
      gpu_xfer_ms += gpu_step->transfer.ms();
    }
    for (std::size_t pi = 0; pi < presets.size(); ++pi) {
      cpu_ms[pi] /= pairs_per_group;
      cpu_util[pi] /= pairs_per_group;
    }
    gpu_ms /= pairs_per_group;
    gpu_pipe_ms /= pairs_per_group;
    gpu_xfer_ms /= pairs_per_group;
    const bool cpu_wins_pipelined = cpu_ms[0] < gpu_pipe_ms;
    for (std::size_t pi = 0; pi < presets.size(); ++pi) {
      if (cpu_ms[pi] < gpu_ms && crossover_group[pi] < 0) {
        crossover_group[pi] = static_cast<int>(gi);
      }
    }
    if (cpu_wins_pipelined && pipelined_crossover_group < 0) {
      pipelined_crossover_group = static_cast<int>(gi);
    }
    std::printf("[%4.0f,%4.0f) %11.3f %11.3f %11.3f %11.3f %11.3f %8s %8s %8s\n",
                groups[gi].lo, groups[gi].hi, cpu_ms[0], cpu_ms[1], cpu_ms[2],
                gpu_ms, gpu_pipe_ms, cpu_ms[0] < gpu_ms ? "CPU" : "GPU",
                cpu_ms[1] < gpu_ms ? "CPU" : "GPU",
                cpu_ms[2] < gpu_ms ? "CPU" : "GPU");

    bench::Json row = bench::Json::object();
    row["ratio_lo"] = groups[gi].lo;
    row["ratio_hi"] = groups[gi].hi;
    row["cpu_ms"] = cpu_ms[0];
    row["cpu_sse4_ms"] = cpu_ms[1];
    row["cpu_avx2_ms"] = cpu_ms[2];
    row["cpu_sse4_lane_util"] = cpu_util[1];
    row["cpu_avx2_lane_util"] = cpu_util[2];
    row["gpu_ms"] = gpu_ms;
    row["gpu_pipelined_ms"] = gpu_pipe_ms;
    row["gpu_transfer_ms"] = gpu_xfer_ms;
    row["winner"] = cpu_ms[0] < gpu_ms ? "cpu" : "gpu";
    row["winner_sse4"] = cpu_ms[1] < gpu_ms ? "cpu" : "gpu";
    row["winner_avx2"] = cpu_ms[2] < gpu_ms ? "cpu" : "gpu";
    row["pipelined_winner"] = cpu_wins_pipelined ? "cpu" : "gpu";
    rows.push_back(std::move(row));
  }
  bench::Json preset_rows = bench::Json::array();
  for (std::size_t pi = 0; pi < presets.size(); ++pi) {
    const int cg = crossover_group[pi];
    const double measured_ratio =
        cg >= 0 ? std::sqrt(groups[static_cast<std::size_t>(cg)].lo *
                            groups[static_cast<std::size_t>(cg)].hi)
                : -1.0;
    const double scale = cpu::simd::crossover_scale(presets[pi].spec);
    if (cg >= 0) {
      std::printf("\n%-6s crossover enters group [%.0f,%.0f) "
                  "(measured point %.0f; scheduler threshold %.1f)",
                  presets[pi].name, groups[static_cast<std::size_t>(cg)].lo,
                  groups[static_cast<std::size_t>(cg)].hi, measured_ratio,
                  128.0 * scale);
    } else {
      std::printf("\n%-6s: no crossover within the swept ratios", presets[pi].name);
    }
    bench::Json pr = bench::Json::object();
    pr["name"] = presets[pi].name;
    pr["crossover_group"] = cg;
    pr["measured_crossover_ratio"] = measured_ratio;
    pr["scheduler_threshold"] = 128.0 * scale;
    pr["simd_decode_speedup"] = decode_speedup[pi];
    preset_rows.push_back(std::move(pr));
  }
  std::printf("\n(paper's rule: 128; scalar measured crossover stays above it,"
              " SIMD presets pull it toward — never below — 128.)\n");
  if (pipelined_crossover_group >= 0) {
    std::printf("With copy/compute overlap the scalar crossover shifts to "
                "[%.0f,%.0f).\n",
                groups[pipelined_crossover_group].lo,
                groups[pipelined_crossover_group].hi);
  } else {
    std::printf("With copy/compute overlap the GPU wins every swept group.\n");
  }
  std::printf("Modeled full-decode speedup vs scalar: sse4 %.2fx, avx2 %.2fx\n",
              decode_speedup[1], decode_speedup[2]);

  // Per-codec analytic crossover: the scheduler's closed-form estimates with
  // StepShape::longer_scheme set, swept over the ratio axis. One
  // representative long list per scheme supplies the actual compressed
  // bytes-per-posting for the transfer term, so both codec levers — CPU
  // decode cost and PCIe payload — move the balance point.
  std::printf("\nPer-codec analytic crossover (scheduler cost model):\n");
  std::printf("  %-10s %14s %18s\n", "codec", "bytes/posting",
              "crossover ratio");
  const core::Scheduler sched({}, sim::HardwareSpec{});
  const auto probe_docs =
      workload::make_uniform_list(longer_size, universe, rng);
  bench::Json codec_rows = bench::Json::array();
  for (const codec::Scheme s : codec::all_schemes()) {
    const auto list = codec::BlockCompressedList::build(probe_docs, s);
    const double bpe = static_cast<double>(list.compressed_bytes()) /
                       static_cast<double>(longer_size);
    double cross = -1.0;
    for (double r = 1.0; r <= 4096.0; r *= 1.05) {
      core::StepShape shape;
      shape.longer = longer_size;
      shape.shorter = std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(longer_size / r));
      shape.longer_bytes = list.compressed_bytes();
      shape.longer_scheme = s;
      if (sched.estimate_cpu(shape) < sched.estimate_gpu(shape)) {
        cross = r;
        break;
      }
    }
    if (cross >= 0) {
      std::printf("  %-10s %14.2f %18.0f\n", codec::scheme_name(s).c_str(),
                  bpe, cross);
    } else {
      std::printf("  %-10s %14.2f %18s\n", codec::scheme_name(s).c_str(), bpe,
                  "none<=4096");
    }
    bench::Json cr = bench::Json::object();
    cr["scheme"] = codec::scheme_name(s);
    cr["bytes_per_posting"] = bpe;
    cr["analytic_crossover_ratio"] = cross;
    codec_rows.push_back(std::move(cr));
  }
  std::printf("(serial-fallback codecs shift the balance toward the CPU: the "
              "GPU pays their per-posting decode penalty.)\n");

  // Three-way split band (DESIGN.md §15): the binary crossover generalizes
  // into a [lambda_lo, lambda_hi] band where the scheduler splits the step
  // across both processors. Swept analytically with the default (ratio +
  // band fall-through) policy per SIMD preset: a big resident probe, the
  // long list priced at the EF sweep list's real bytes-per-posting.
  std::printf("\nThree-way split band (default policy, probe %u):\n",
              1u << 20);
  std::printf("  %-6s %10s %10s %10s %10s\n", "preset", "lambda_lo",
              "lambda_hi", "alpha_mid", "structure");
  const auto band_list =
      codec::BlockCompressedList::build(probe_docs, codec::Scheme::kEliasFano);
  const double band_bpe = static_cast<double>(band_list.compressed_bytes()) /
                          static_cast<double>(longer_size);
  bench::Json band_rows = bench::Json::array();
  for (const auto& preset : presets) {
    sim::HardwareSpec hw;
    hw.cpu = preset.spec;
    const core::Scheduler ssched({}, hw);
    const std::uint64_t probe = 1u << 20;
    double lo = -1.0, hi = -1.0;
    bool contiguous = true;  // kGpu below the band, kCpu above, splits inside
    for (double r = 1.0; r <= 4096.0; r *= 1.02) {
      core::StepShape sh;
      sh.shorter = probe;
      sh.longer = static_cast<std::uint64_t>(r * static_cast<double>(probe));
      sh.longer_bytes = static_cast<std::uint64_t>(
          band_bpe * static_cast<double>(sh.longer));
      sh.current_location = core::Placement::kCpu;
      switch (ssched.decide(sh)) {
        case core::Placement::kSplit:
          if (lo < 0) lo = r;
          if (hi >= 0) contiguous = false;  // split after the band closed
          break;
        case core::Placement::kGpu:
          if (lo >= 0) contiguous = false;  // GPU inside/after the band
          break;
        case core::Placement::kCpu:
          if (lo >= 0 && hi < 0) hi = r;  // first CPU above closes the band
          break;
      }
    }
    double alpha_mid = -1.0;
    if (lo > 0 && hi > lo) {
      core::StepShape sh;
      sh.shorter = probe;
      sh.longer = static_cast<std::uint64_t>(std::sqrt(lo * hi) *
                                             static_cast<double>(probe));
      sh.longer_bytes = static_cast<std::uint64_t>(
          band_bpe * static_cast<double>(sh.longer));
      sh.current_location = core::Placement::kCpu;
      alpha_mid = ssched.split_alpha(sh);
    }
    std::printf("  %-6s %10.1f %10.1f %10.3f %10s\n", preset.name, lo, hi,
                alpha_mid, contiguous ? "gpu|split|cpu" : "BROKEN");
    bench::Json br = bench::Json::object();
    br["name"] = preset.name;
    br["lambda_lo"] = lo;
    br["lambda_hi"] = hi;
    br["alpha_mid"] = alpha_mid;
    br["contiguous"] = contiguous;
    band_rows.push_back(std::move(br));
  }
  std::printf("(inside the band both processors finish in comparable time, "
              "so co-executing one step beats either alone.)\n");

  bench::Json root = bench::Json::object();
  root["bench"] = "crossover";
  root["fast_mode"] = bench::fast_mode();
  root["longer_size"] = longer_size;
  root["groups"] = std::move(rows);
  root["crossover_group"] = crossover_group[0];
  root["pipelined_crossover_group"] = pipelined_crossover_group;
  root["presets"] = std::move(preset_rows);
  root["codec_crossover"] = std::move(codec_rows);
  root["split_band"] = std::move(band_rows);
  bench::write_bench_json("crossover", root);
  return 0;
}
