// Figures 10 & 11 — benchmark characterization: the inverted-list size CDF
// of the corpus and the query term-count distribution of the log. These are
// the two properties of the real benchmark (ClueWeb12 + TREC'05/06) that the
// synthetic workload reproduces; every other experiment runs on top of them.
#include <cstdio>
#include <map>

#include "bench_common.h"
#include "util/stats.h"

using namespace griffin;

int main() {
  const auto cfg = bench::paper_corpus_config();

  bench::print_header(
      "Figure 10: Inverted List Size Distribution (CDF)",
      "lists involved in the experiments: mostly 1K-1M, tail to 26M");

  // The paper plots the lists *involved in the experiments*, i.e. the lists
  // the query log touches — which skews toward frequent terms.
  auto qcfg10 = bench::paper_query_config(10'000, cfg);
  const auto log10 = workload::generate_query_log(qcfg10, cfg.num_terms);
  util::LogHistogram hist(1e3, 3e7, 10.0);
  for (const auto& q : log10) {
    for (const auto t : q.terms) {
      hist.add(static_cast<double>(workload::list_size_for_rank(cfg, t + 1)));
    }
  }
  std::printf("%-14s %10s %8s\n", "list size <", "lists", "CDF");
  for (std::size_t b = 0; b < hist.bucket_count(); ++b) {
    const double hi = b + 1 < hist.bucket_count()
                          ? hist.bucket_lo(b + 1)
                          : 1e30;
    std::printf("%-14.0f %10llu %7.1f%%\n", hi == 1e30 ? 3e7 : hi,
                static_cast<unsigned long long>(hist.count(b)),
                100.0 * hist.cdf(b));
  }

  bench::print_header(
      "Figure 11: Number of Terms Distribution",
      "~27% 2-term, ~33% 3-term, ~24% 4-term, tail past 6 (TREC logs)");

  auto qcfg = bench::paper_query_config(10'000, cfg);
  const auto log = workload::generate_query_log(qcfg, cfg.num_terms);
  std::map<std::size_t, int> counts;
  for (const auto& q : log) ++counts[q.terms.size()];
  std::printf("%-10s %10s %10s\n", "#terms", "queries", "fraction");
  int more_than_6 = 0;
  for (const auto& [n, c] : counts) {
    if (n > 6) {
      more_than_6 += c;
      continue;
    }
    std::printf("%-10zu %10d %9.1f%%\n", n, c,
                100.0 * c / static_cast<double>(log.size()));
  }
  std::printf("%-10s %10d %9.1f%%\n", ">6", more_than_6,
              100.0 * more_than_6 / static_cast<double>(log.size()));
  return 0;
}
