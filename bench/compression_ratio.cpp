// Table 1 — compression ratio across the codec zoo over the corpus's
// inverted lists (paper: PForDelta 3.3, EF 4.6; ratio = raw 32-bit size /
// compressed size, skip tables included), plus the adaptive per-list
// selector. CI asserts the adaptive total never exceeds the best fixed
// scheme's total (it cannot, by construction — codec/codec.h).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "codec/block_codec.h"
#include "codec/codec.h"
#include "util/rng.h"

using namespace griffin;

int main() {
  bench::print_header(
      "Table 1: Compression Ratio Comparison",
      "PForDelta 3.3, EF 4.6 (ClueWeb12 lists; here: synthetic stand-in)");

  const auto cfg = bench::paper_corpus_config();
  util::Xoshiro256 rng(cfg.seed);

  constexpr std::size_t kNum = codec::kNumSchemes;
  std::uint64_t raw_bytes = 0;
  std::uint64_t fixed_bytes[kNum] = {};
  std::uint64_t adaptive_bytes = 0;
  std::uint64_t postings = 0;
  std::uint64_t picks[kNum] = {};  // adaptive selections per scheme

  // Sample lists across the rank spectrum (every rank would just repeat the
  // same gap statistics); weight by actual postings so the aggregate matches
  // whole-corpus ratios.
  const std::uint32_t rank_step = std::max(1u, cfg.num_terms / 64);
  for (std::uint32_t rank = 1; rank <= cfg.num_terms; rank += rank_step) {
    const std::uint64_t n = workload::list_size_for_rank(cfg, rank);
    const auto docs = workload::make_uniform_list(n, cfg.num_docs, rng);
    const double weight = static_cast<double>(rank_step);
    raw_bytes += static_cast<std::uint64_t>(weight * 4.0 * n);
    postings += static_cast<std::uint64_t>(weight * n);
    for (const codec::Scheme s : codec::all_schemes()) {
      const auto list = codec::BlockCompressedList::build(docs, s);
      fixed_bytes[static_cast<std::size_t>(s)] +=
          static_cast<std::uint64_t>(weight * list.compressed_bytes());
    }
    const codec::Scheme pick = codec::select_scheme(docs);
    picks[static_cast<std::size_t>(pick)] +=
        static_cast<std::uint64_t>(weight);
    const auto adaptive = codec::BlockCompressedList::build(docs, pick);
    adaptive_bytes +=
        static_cast<std::uint64_t>(weight * adaptive.compressed_bytes());
  }

  auto ratio_of = [&](std::uint64_t bytes) {
    return static_cast<double>(raw_bytes) / static_cast<double>(bytes);
  };
  auto bits_per_posting = [&](std::uint64_t bytes) {
    return 8.0 * static_cast<double>(bytes) / static_cast<double>(postings);
  };

  auto root = bench::Json::object();
  root["bench"] = "compression_ratio";
  root["fast_mode"] = bench::fast_mode();
  root["raw_bytes"] = raw_bytes;
  root["postings"] = postings;

  std::printf("%-12s %18s %18s\n", "Scheme", "Compression Ratio",
              "bits/posting");
  auto schemes = bench::Json::array();
  std::uint64_t best_fixed = 0;
  for (const codec::Scheme s : codec::all_schemes()) {
    const std::uint64_t bytes = fixed_bytes[static_cast<std::size_t>(s)];
    if (best_fixed == 0 || bytes < best_fixed) best_fixed = bytes;
    std::printf("%-12s %18.2f %18.2f\n", codec::scheme_name(s).c_str(),
                ratio_of(bytes), bits_per_posting(bytes));
    auto row = bench::Json::object();
    row["scheme"] = codec::scheme_name(s);
    row["compressed_bytes"] = bytes;
    row["compression_ratio"] = ratio_of(bytes);
    row["bits_per_posting"] = bits_per_posting(bytes);
    schemes.push_back(std::move(row));
  }
  std::printf("%-12s %18.2f %18.2f\n", "Adaptive", ratio_of(adaptive_bytes),
              bits_per_posting(adaptive_bytes));
  root["schemes"] = std::move(schemes);
  root["adaptive_total_bytes"] = adaptive_bytes;
  root["adaptive_compression_ratio"] = ratio_of(adaptive_bytes);
  root["adaptive_bits_per_posting"] = bits_per_posting(adaptive_bytes);
  root["best_fixed_bytes"] = best_fixed;

  std::printf("\nAdaptive picks by scheme (posting-weighted list counts):\n");
  auto picked = bench::Json::object();
  for (const codec::Scheme s : codec::all_schemes()) {
    const std::uint64_t c = picks[static_cast<std::size_t>(s)];
    if (c > 0) std::printf("  %-10s %8llu\n", codec::scheme_name(s).c_str(),
                           static_cast<unsigned long long>(c));
    picked[codec::scheme_name(s)] = c;
  }
  root["adaptive_picks"] = std::move(picked);

  const auto at = [&](codec::Scheme s) {
    return fixed_bytes[static_cast<std::size_t>(s)];
  };
  const double r_pf = ratio_of(at(codec::Scheme::kPForDelta));
  const double r_ef = ratio_of(at(codec::Scheme::kEliasFano));
  std::printf("\nEF / PForDelta ratio improvement: %.2fx (paper: 1.4x)\n",
              r_ef / r_pf);
  std::printf("Adaptive vs best fixed: %llu vs %llu bytes (%s)\n",
              static_cast<unsigned long long>(adaptive_bytes),
              static_cast<unsigned long long>(best_fixed),
              adaptive_bytes <= best_fixed ? "OK" : "REGRESSION");
  bench::write_bench_json("compression_ratio", root);
  return 0;
}
