// Table 1 — compression ratio of PForDelta vs Elias-Fano over the corpus's
// inverted lists (paper: PForDelta 3.3, EF 4.6; ratio = raw 32-bit size /
// compressed size, skip tables included). VByte is reported as an extra
// baseline.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "codec/block_codec.h"
#include "util/rng.h"

using namespace griffin;

int main() {
  bench::print_header(
      "Table 1: Compression Ratio Comparison",
      "PForDelta 3.3, EF 4.6 (ClueWeb12 lists; here: synthetic stand-in)");

  const auto cfg = bench::paper_corpus_config();
  util::Xoshiro256 rng(cfg.seed);

  // Sample lists across the rank spectrum (every rank would just repeat the
  // same gap statistics); weight by actual postings so the aggregate matches
  // whole-corpus ratios.
  std::uint64_t raw_bytes = 0;
  std::uint64_t pfor_bytes = 0, ef_bytes = 0, vbyte_bytes = 0;
  std::uint64_t postings = 0;
  const std::uint32_t rank_step = std::max(1u, cfg.num_terms / 64);
  for (std::uint32_t rank = 1; rank <= cfg.num_terms; rank += rank_step) {
    const std::uint64_t n = workload::list_size_for_rank(cfg, rank);
    const auto docs = workload::make_uniform_list(n, cfg.num_docs, rng);
    const double weight = static_cast<double>(rank_step);
    const auto pf =
        codec::BlockCompressedList::build(docs, codec::Scheme::kPForDelta);
    const auto ef =
        codec::BlockCompressedList::build(docs, codec::Scheme::kEliasFano);
    const auto vb =
        codec::BlockCompressedList::build(docs, codec::Scheme::kVarByte);
    raw_bytes += static_cast<std::uint64_t>(weight * 4.0 * n);
    pfor_bytes += static_cast<std::uint64_t>(weight * pf.compressed_bytes());
    ef_bytes += static_cast<std::uint64_t>(weight * ef.compressed_bytes());
    vbyte_bytes += static_cast<std::uint64_t>(weight * vb.compressed_bytes());
    postings += static_cast<std::uint64_t>(weight * n);
  }

  const double r_pf = static_cast<double>(raw_bytes) / pfor_bytes;
  const double r_ef = static_cast<double>(raw_bytes) / ef_bytes;
  const double r_vb = static_cast<double>(raw_bytes) / vbyte_bytes;

  std::printf("%-12s %18s %18s\n", "Scheme", "Compression Ratio",
              "bits/posting");
  std::printf("%-12s %18.2f %18.2f\n", "PForDelta", r_pf,
              8.0 * pfor_bytes / static_cast<double>(postings));
  std::printf("%-12s %18.2f %18.2f\n", "EF", r_ef,
              8.0 * ef_bytes / static_cast<double>(postings));
  std::printf("%-12s %18.2f %18.2f\n", "VByte", r_vb,
              8.0 * vbyte_bytes / static_cast<double>(postings));
  std::printf("\nEF / PForDelta ratio improvement: %.2fx (paper: 1.4x)\n",
              r_ef / r_pf);
  return 0;
}
