// Ablation — scheduling policies (paper Figure 1 and §5): static CPU-only
// (1a), static GPU-only (1b), whole-query hybrid placement like Ding et
// al. [12] (1c: pick one processor per query from the first pair's ratio),
// and Griffin's intra-query scheduling (1d) with both the ratio rule and the
// cost-model extension.
//
// The bench drives everything through the engines' recorded plans
// (QueryResult::trace): scheme 1c replays the first intersect step's
// StepShape from the CPU pass through a residency-blind ratio Scheduler —
// the exact decision a whole-query planner would make — and the second
// table reports how each policy's executed steps split across processors.
#include <cstdio>
#include <optional>
#include <vector>

#include "bench_common.h"
#include "core/hybrid_engine.h"
#include "core/scheduler.h"
#include "util/stats.h"

using namespace griffin;

namespace {

struct PolicyResult {
  double mean_ms = 0;
  double p95_ms = 0;
  core::TraceSummary trace;
};

template <typename RunFn>
PolicyResult run_policy(const std::vector<core::Query>& log, RunFn&& run) {
  PolicyResult r;
  util::PercentileTracker ms;
  for (std::size_t i = 0; i < log.size(); ++i) {
    const core::QueryResult res = run(i, log[i]);
    ms.add(res.metrics.total.ms());
    r.trace.add(res.trace);
  }
  r.mean_ms = ms.mean();
  r.p95_ms = ms.percentile(95);
  return r;
}

void print_policy(const char* name, const PolicyResult& r) {
  std::printf("%-28s %12.3f %12.3f %10.2f %6llu %6llu\n", name, r.mean_ms,
              r.p95_ms, 100.0 * r.trace.gpu_intersect_fraction(),
              static_cast<unsigned long long>(r.trace.transfer_steps),
              static_cast<unsigned long long>(r.trace.migrations));
}

bench::Json policy_json(const char* name, const PolicyResult& r) {
  bench::Json j = bench::Json::object();
  j["policy"] = name;
  j["mean_ms"] = r.mean_ms;
  j["p95_ms"] = r.p95_ms;
  j["steps"] = r.trace.steps;
  j["cpu_intersects"] = r.trace.cpu_intersects;
  j["gpu_intersects"] = r.trace.gpu_intersects;
  j["transfer_steps"] = r.trace.transfer_steps;
  j["migrations"] = r.trace.migrations;
  return j;
}

}  // namespace

int main() {
  auto cfg = bench::paper_corpus_config();
  cfg.num_docs = bench::fast_mode() ? 500'000 : 3'000'000;
  cfg.num_terms = bench::fast_mode() ? 300 : 2'000;
  std::fprintf(stderr, "[ablation_scheduling] building/loading corpus...\n");
  const auto idx = bench::cached_corpus(cfg);

  // A flatter term bias than the end-to-end log: mixes rare terms with
  // frequent ones, so first-pair ratios span both sides of the crossover
  // and the policies actually diverge.
  auto qcfg = bench::paper_query_config(50, cfg);
  qcfg.term_zipf_s = 0.85;
  qcfg.topical_fraction = 0.6;
  const auto log = workload::generate_query_log(qcfg, cfg.num_terms);

  bench::print_header(
      "Ablation: scheduling policies (Figure 1's four schemes)",
      "intra-query (1d) beats whole-query hybrid (1c) and both statics");

  cpu::CpuEngine cpu_engine(idx);
  gpu::GpuEngine gpu_engine(idx);
  core::HybridEngine griffin(idx);
  core::HybridOptions cost_opt;
  cost_opt.scheduler.policy = core::SchedulerPolicy::kCostModel;
  core::HybridEngine griffin_cost(idx, {}, cost_opt);

  // 1(a), which also records each query's first intersect shape — the input
  // a whole-query placement policy sees.
  std::vector<std::optional<core::StepShape>> first_shape(log.size());
  const auto r_cpu = run_policy(log, [&](std::size_t i, const core::Query& q) {
    auto res = cpu_engine.execute(q);
    for (const auto& rec : res.trace) {
      if (rec.kind == core::StepKind::kIntersect) {
        first_shape[i] = rec.shape;
        break;
      }
    }
    return res;
  });
  const auto r_gpu = run_policy(log, [&](std::size_t, const core::Query& q) {
    return gpu_engine.execute(q);
  });
  // 1(c): whole-query placement from the recorded first-pair shape, decided
  // by the paper's ratio rule with residency folded out (a one-shot planner
  // has no cache state to consult). Single-term queries have no intersect
  // step; ratio 1 puts them on the GPU.
  core::SchedulerOptions whole_opt;
  whole_opt.residency_aware = false;
  const core::Scheduler whole(whole_opt);
  const auto r_whole =
      run_policy(log, [&](std::size_t i, const core::Query& q) {
        const bool on_gpu =
            !first_shape[i].has_value() ||
            whole.decide(*first_shape[i]) == core::Placement::kGpu;
        return on_gpu ? gpu_engine.execute(q) : cpu_engine.execute(q);
      });
  const auto r_griffin =
      run_policy(log, [&](std::size_t, const core::Query& q) {
        return griffin.execute(q);
      });
  const auto r_cost = run_policy(log, [&](std::size_t, const core::Query& q) {
    return griffin_cost.execute(q);
  });

  std::printf("%-28s %12s %12s %10s %6s %6s\n", "policy", "mean (ms)",
              "p95 (ms)", "GPU int %", "xfers", "migr");
  print_policy("CPU-only (1a)", r_cpu);
  print_policy("GPU-only (1b)", r_gpu);
  print_policy("whole-query hybrid (1c)", r_whole);
  print_policy("Griffin ratio rule (1d)", r_griffin);
  print_policy("Griffin cost model (ext.)", r_cost);
  std::printf(
      "\nStep mix from the recorded plans: 1d ran %llu/%llu intersects on "
      "the GPU with %llu mid-query migrations; 1c commits each query whole "
      "(%llu migrations by construction).\n",
      static_cast<unsigned long long>(r_griffin.trace.gpu_intersects),
      static_cast<unsigned long long>(r_griffin.trace.gpu_intersects +
                                      r_griffin.trace.cpu_intersects),
      static_cast<unsigned long long>(r_griffin.trace.migrations),
      static_cast<unsigned long long>(r_whole.trace.migrations));

  bench::Json rows = bench::Json::array();
  rows.push_back(policy_json("cpu_only", r_cpu));
  rows.push_back(policy_json("gpu_only", r_gpu));
  rows.push_back(policy_json("whole_query", r_whole));
  rows.push_back(policy_json("griffin_ratio", r_griffin));
  rows.push_back(policy_json("griffin_cost_model", r_cost));
  bench::Json root = bench::Json::object();
  root["bench"] = "ablation_scheduling";
  root["fast_mode"] = bench::fast_mode();
  root["queries"] = static_cast<std::uint64_t>(log.size());
  root["policies"] = std::move(rows);
  bench::write_bench_json("ablation_scheduling", root);
  return 0;
}
