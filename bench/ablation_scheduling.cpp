// Ablation — scheduling policies (paper Figure 1 and §5): static CPU-only
// (1a), static GPU-only (1b), whole-query hybrid placement like Ding et
// al. [12] (1c: pick one processor per query from the first pair's ratio),
// and Griffin's intra-query scheduling (1d) with both the ratio rule and the
// cost-model extension.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/hybrid_engine.h"
#include "util/stats.h"

using namespace griffin;

namespace {

struct PolicyResult {
  double mean_ms = 0;
  double p95_ms = 0;
};

template <typename RunFn>
PolicyResult run_policy(const std::vector<core::Query>& log, RunFn&& run) {
  util::PercentileTracker ms;
  for (const auto& q : log) ms.add(run(q));
  return {ms.mean(), ms.percentile(95)};
}

}  // namespace

int main() {
  auto cfg = bench::paper_corpus_config();
  cfg.num_docs = bench::fast_mode() ? 500'000 : 3'000'000;
  cfg.num_terms = bench::fast_mode() ? 300 : 2'000;
  std::fprintf(stderr, "[ablation_scheduling] building/loading corpus...\n");
  const auto idx = bench::cached_corpus(cfg);

  // A flatter term bias than the end-to-end log: mixes rare terms with
  // frequent ones, so first-pair ratios span both sides of the crossover
  // and the policies actually diverge.
  auto qcfg = bench::paper_query_config(50, cfg);
  qcfg.term_zipf_s = 0.85;
  qcfg.topical_fraction = 0.6;
  const auto log = workload::generate_query_log(qcfg, cfg.num_terms);

  bench::print_header(
      "Ablation: scheduling policies (Figure 1's four schemes)",
      "intra-query (1d) beats whole-query hybrid (1c) and both statics");

  cpu::CpuEngine cpu_engine(idx);
  gpu::GpuEngine gpu_engine(idx);
  core::HybridEngine griffin(idx);
  core::HybridOptions cost_opt;
  cost_opt.scheduler.policy = core::SchedulerPolicy::kCostModel;
  core::HybridEngine griffin_cost(idx, {}, cost_opt);

  const auto r_cpu = run_policy(log, [&](const core::Query& q) {
    return cpu_engine.execute(q).metrics.total.ms();
  });
  const auto r_gpu = run_policy(log, [&](const core::Query& q) {
    return gpu_engine.execute(q).metrics.total.ms();
  });
  // 1(c): whole-query placement by the first pair's ratio — no migration.
  const auto r_whole = run_policy(log, [&](const core::Query& q) {
    std::vector<index::TermId> terms(q.terms);
    std::sort(terms.begin(), terms.end(),
              [&](index::TermId a, index::TermId b) {
                return idx.list(a).size() < idx.list(b).size();
              });
    double ratio = 1.0;
    if (terms.size() >= 2) {
      ratio = static_cast<double>(idx.list(terms[1]).size()) /
              static_cast<double>(idx.list(terms[0]).size());
    }
    return ratio < 128.0 ? gpu_engine.execute(q).metrics.total.ms()
                         : cpu_engine.execute(q).metrics.total.ms();
  });
  const auto r_griffin = run_policy(log, [&](const core::Query& q) {
    return griffin.execute(q).metrics.total.ms();
  });
  const auto r_cost = run_policy(log, [&](const core::Query& q) {
    return griffin_cost.execute(q).metrics.total.ms();
  });

  std::printf("%-28s %12s %12s\n", "policy", "mean (ms)", "p95 (ms)");
  std::printf("%-28s %12.3f %12.3f\n", "CPU-only (1a)", r_cpu.mean_ms,
              r_cpu.p95_ms);
  std::printf("%-28s %12.3f %12.3f\n", "GPU-only (1b)", r_gpu.mean_ms,
              r_gpu.p95_ms);
  std::printf("%-28s %12.3f %12.3f\n", "whole-query hybrid (1c)",
              r_whole.mean_ms, r_whole.p95_ms);
  std::printf("%-28s %12.3f %12.3f\n", "Griffin ratio rule (1d)",
              r_griffin.mean_ms, r_griffin.p95_ms);
  std::printf("%-28s %12.3f %12.3f\n", "Griffin cost model (ext.)",
              r_cost.mean_ms, r_cost.p95_ms);
  return 0;
}
