// Extension bench — device-resident posting-list cache and host
// decoded-postings cache (DESIGN.md §7). The paper uploads every posting
// list over PCIe per query; on production streams the term popularity is
// Zipf-skewed, so a byte-budgeted LRU of uploaded lists in spare device
// memory (and of decoded lists in host memory) removes the dominant
// transfer/decode charges for the hot head.
//
// This bench replays Zipf-repeated query streams at three skews against a
// sweep of {scheduler policy} x {cache configuration} — one warm-up replay,
// then a measured replay (steady state) — and reports the latency
// distribution, the cache-tier hit rates, and — the correctness gate —
// whether every cached run returned bit-identical top-k results (doc ids
// and float-exact scores) to the cache-off baseline. Exits non-zero on any
// mismatch. Everything is seeded; two runs print the same.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/hybrid_engine.h"
#include "cpu/engine.h"
#include "util/stats.h"

using namespace griffin;

namespace {

struct CacheConfig {
  const char* name;
  bool device;                       // GPU list cache on?
  std::size_t device_headroom;       // headroom when on (budget = mem - this)
  std::size_t host_bytes;            // host decoded-cache budget (0 = off)
};

struct RunResult {
  util::PercentileTracker lat_ms;
  core::CacheCounters cache;
  std::vector<std::vector<core::ScoredDoc>> topk;
};

/// One warm-up replay, then a measured replay. Warming isolates the
/// steady-state effect the cache exists for (the cold pass costs exactly
/// the uncached engine's price by construction — tests/test_list_cache and
/// tests/test_decoded_cache pin that); for cache-off configs the engine is
/// stateless, so the warm-up changes nothing and the comparison is fair.
template <typename Engine>
RunResult run_warmed(Engine& engine, const std::vector<core::Query>& stream) {
  for (const auto& q : stream) engine.execute(q);

  RunResult r;
  r.lat_ms.reserve(stream.size());
  r.topk.reserve(stream.size());
  for (const auto& q : stream) {
    auto res = engine.execute(q);
    r.lat_ms.add(res.metrics.total.ms());
    r.cache += res.metrics.cache;
    r.topk.push_back(std::move(res.topk));
  }
  return r;
}

RunResult run_stream(const index::InvertedIndex& idx,
                     const std::vector<core::Query>& stream,
                     core::SchedulerPolicy policy, const CacheConfig& cc) {
  core::HybridOptions opt;
  opt.scheduler.policy = policy;
  opt.gpu.list_cache = cc.device;
  opt.gpu.list_cache_headroom_bytes = cc.device_headroom;
  opt.cpu.decoded_cache_bytes = cc.host_bytes;
  core::HybridEngine engine(idx, {}, opt);
  return run_warmed(engine, stream);
}

RunResult run_cpu_stream(const index::InvertedIndex& idx,
                         const std::vector<core::Query>& stream,
                         std::size_t decoded_cache_bytes) {
  cpu::CpuEngineOptions opt;
  opt.decoded_cache_bytes = decoded_cache_bytes;
  // The decoded cache fills on the skip path's probe decode (the merge path
  // is deliberately lookup-only; see cpu/svs_step.h). This bench corpus has
  // milder length ratios than the paper's, so lower the skip threshold to
  // put the stream on the path the cache serves. Applied to baseline and
  // cached runs alike, so the bit-identical comparison is like-for-like.
  opt.skip_ratio = 1.0;
  cpu::CpuEngine engine(idx, {}, opt);
  return run_warmed(engine, stream);
}

bool identical_topk(const RunResult& a, const RunResult& b) {
  if (a.topk.size() != b.topk.size()) return false;
  for (std::size_t i = 0; i < a.topk.size(); ++i) {
    const auto& x = a.topk[i];
    const auto& y = b.topk[i];
    if (x.size() != y.size()) return false;
    for (std::size_t j = 0; j < x.size(); ++j) {
      if (x[j].doc != y[j].doc || x[j].score != y[j].score) return false;
    }
  }
  return true;
}

const char* policy_name(core::SchedulerPolicy p) {
  return p == core::SchedulerPolicy::kCostModel ? "cost" : "ratio";
}

}  // namespace

int main() {
  workload::CorpusConfig cfg = bench::paper_corpus_config();
  cfg.num_docs = bench::fast_mode() ? 200'000 : 1'000'000;
  cfg.num_terms = bench::fast_mode() ? 300 : 1'500;
  std::fprintf(stderr, "[list_cache] building/loading corpus...\n");
  const auto idx = bench::cached_corpus(cfg);

  const std::size_t device_mem = sim::HardwareSpec{}.pcie.device_mem_bytes;
  const CacheConfig configs[] = {
      {"off", false, 0, 0},
      // Default headroom (1 GiB) leaves ~4 GiB of the 5 GiB device for lists.
      {"device", true, std::size_t{1} << 30, 0},
      {"dev+host", true, std::size_t{1} << 30, std::size_t{1} << 30},
      // Tight budgets (512 KiB device, 64 KiB host) force eviction churn:
      // the hot head should still hit while the tail cycles through.
      {"tight", true, device_mem - (std::size_t{512} << 10),
       std::size_t{64} << 10},
  };

  bench::print_header(
      "Extension: device-resident list cache + host decoded cache",
      "removes per-query PCIe upload (paper charges it on every query)");
  std::printf("corpus: %u docs, %u terms; device mem %zu MiB\n\n", cfg.num_docs,
              cfg.num_terms, device_mem >> 20);
  std::printf("%-5s %-6s %-9s %9s %9s %9s %9s %7s %7s %8s %5s\n", "zipf",
              "policy", "cache", "mean(ms)", "p50(ms)", "p95(ms)", "p99(ms)",
              "dev-h%", "host-h%", "evict", "same");

  bench::Json runs = bench::Json::array();
  bool all_identical = true;

  for (const double zipf : {0.7, 1.1, 1.5}) {
    auto base = bench::paper_query_config(1, cfg);
    workload::RepeatedLogConfig rep;
    rep.num_queries = static_cast<std::uint32_t>(bench::scaled(400));
    rep.unique_queries = static_cast<std::uint32_t>(bench::scaled(100));
    rep.popularity_zipf_s = zipf;
    rep.seed = 707;
    const auto stream =
        workload::generate_repeated_query_log(base, rep, cfg.num_terms);

    for (const auto policy : {core::SchedulerPolicy::kRatioThreshold,
                              core::SchedulerPolicy::kCostModel}) {
      // Fresh cache-off baseline per (zipf, policy): the reference both for
      // latency (warm-cache speedup) and for bit-identical top-k.
      const RunResult baseline = run_stream(idx, stream, policy, configs[0]);

      for (const CacheConfig& cc : configs) {
        const RunResult r = cc.device || cc.host_bytes != 0
                                ? run_stream(idx, stream, policy, cc)
                                : RunResult{};
        const RunResult& cur = (cc.device || cc.host_bytes != 0) ? r : baseline;
        const bool same = identical_topk(baseline, cur);
        all_identical = all_identical && same;

        const auto evictions =
            cur.cache.device_evictions + cur.cache.host_evictions;
        std::printf(
            "%-5.1f %-6s %-9s %9.3f %9.3f %9.3f %9.3f %6.0f%% %6.0f%% %8llu "
            "%5s\n",
            zipf, policy_name(policy), cc.name, cur.lat_ms.mean(),
            cur.lat_ms.percentile(50), cur.lat_ms.percentile(95),
            cur.lat_ms.percentile(99), 100.0 * cur.cache.device_hit_rate(),
            100.0 * cur.cache.host_hit_rate(),
            static_cast<unsigned long long>(evictions), same ? "yes" : "NO");

        bench::Json row = bench::Json::object();
        row["zipf_s"] = zipf;
        row["policy"] = policy_name(policy);
        row["cache"] = cc.name;
        row["latency_ms"] = bench::latency_json(cur.lat_ms);
        bench::Json cache = bench::Json::object();
        cache["device_hits"] = cur.cache.device_hits;
        cache["device_misses"] = cur.cache.device_misses;
        cache["device_evictions"] = cur.cache.device_evictions;
        cache["device_hit_rate"] = cur.cache.device_hit_rate();
        cache["host_hits"] = cur.cache.host_hits;
        cache["host_misses"] = cur.cache.host_misses;
        cache["host_evictions"] = cur.cache.host_evictions;
        cache["host_hit_rate"] = cur.cache.host_hit_rate();
        row["cache_counters"] = cache;
        row["identical_to_baseline"] = same;
        row["speedup_mean_vs_off"] = baseline.lat_ms.mean() / cur.lat_ms.mean();
        row["speedup_p99_vs_off"] =
            baseline.lat_ms.percentile(99) / cur.lat_ms.percentile(99);
        runs.push_back(std::move(row));
      }
      std::printf("\n");
    }
  }

  // ---- Host decoded-postings tier in isolation ----
  // The hybrid engine routes the heavy steps of this stream to the GPU, so
  // the host tier barely registers above; the CPU-only engine is where it
  // pays (skip-path probe decodes recur on the hot head). Same bit-identical
  // gate against a cache-off CPU baseline.
  std::printf("\nHost decoded-postings tier (CPU-only engine, same streams):\n");
  std::printf("%-5s %-9s %9s %9s %9s %7s %8s %5s\n", "zipf", "cache",
              "mean(ms)", "p50(ms)", "p99(ms)", "host-h%", "evict", "same");

  bench::Json cpu_runs = bench::Json::array();
  struct HostConfig { const char* name; std::size_t bytes; };
  const HostConfig host_configs[] = {
      {"off", 0},
      {"host", std::size_t{1} << 30},
      {"tight", std::size_t{64} << 10},
  };
  for (const double zipf : {0.7, 1.5}) {
    auto base = bench::paper_query_config(1, cfg);
    workload::RepeatedLogConfig rep;
    rep.num_queries = static_cast<std::uint32_t>(bench::scaled(400));
    rep.unique_queries = static_cast<std::uint32_t>(bench::scaled(100));
    rep.popularity_zipf_s = zipf;
    rep.seed = 707;
    const auto stream =
        workload::generate_repeated_query_log(base, rep, cfg.num_terms);

    const RunResult baseline = run_cpu_stream(idx, stream, 0);
    for (const HostConfig& hc : host_configs) {
      const RunResult r =
          hc.bytes != 0 ? run_cpu_stream(idx, stream, hc.bytes) : RunResult{};
      const RunResult& cur = hc.bytes != 0 ? r : baseline;
      const bool same = identical_topk(baseline, cur);
      all_identical = all_identical && same;

      std::printf("%-5.1f %-9s %9.3f %9.3f %9.3f %6.0f%% %8llu %5s\n", zipf,
                  hc.name, cur.lat_ms.mean(), cur.lat_ms.percentile(50),
                  cur.lat_ms.percentile(99),
                  100.0 * cur.cache.host_hit_rate(),
                  static_cast<unsigned long long>(cur.cache.host_evictions),
                  same ? "yes" : "NO");

      bench::Json row = bench::Json::object();
      row["zipf_s"] = zipf;
      row["cache"] = hc.name;
      row["latency_ms"] = bench::latency_json(cur.lat_ms);
      row["host_hits"] = cur.cache.host_hits;
      row["host_misses"] = cur.cache.host_misses;
      row["host_evictions"] = cur.cache.host_evictions;
      row["host_hit_rate"] = cur.cache.host_hit_rate();
      row["identical_to_baseline"] = same;
      row["speedup_mean_vs_off"] = baseline.lat_ms.mean() / cur.lat_ms.mean();
      cpu_runs.push_back(std::move(row));
    }
    std::printf("\n");
  }

  // ---- Codec dimension: budget x Zipf x codec ----
  // The device cache admits by *actual* compressed footprint (blob words +
  // descriptors), so the codec decides how many lists a byte budget holds:
  // a tighter codec turns the same budget into more resident lists and a
  // higher hit rate. Swept over fixed schemes and the adaptive selector on
  // a re-encoded copy of the corpus; the bit-identical gate applies per
  // codec (its own cache-off baseline).
  std::printf("\nCodec dimension (device cache, budget x zipf x codec):\n");
  std::printf("%-9s %-6s %-5s %9s %9s %7s %8s %5s\n", "codec", "cache",
              "zipf", "mean(ms)", "p99(ms)", "dev-h%", "evict", "same");

  struct CodecConfig {
    const char* name;
    codec::Scheme scheme;
    bool adaptive;
  };
  const CodecConfig codecs[] = {
      {"ef", codec::Scheme::kEliasFano, false},
      {"pfor", codec::Scheme::kPForDelta, false},
      {"vbyte", codec::Scheme::kVarByte, false},
      {"adaptive", codec::Scheme::kEliasFano, true},
  };
  bench::Json codec_runs = bench::Json::array();
  for (const CodecConfig& co : codecs) {
    workload::CorpusConfig ccfg = cfg;
    ccfg.scheme = co.scheme;
    ccfg.adaptive = co.adaptive;
    const auto cidx = bench::cached_corpus(ccfg);
    for (const double zipf : {0.7, 1.5}) {
      auto base = bench::paper_query_config(1, ccfg);
      workload::RepeatedLogConfig rep;
      rep.num_queries = static_cast<std::uint32_t>(bench::scaled(400));
      rep.unique_queries = static_cast<std::uint32_t>(bench::scaled(100));
      rep.popularity_zipf_s = zipf;
      rep.seed = 707;
      const auto stream =
          workload::generate_repeated_query_log(base, rep, ccfg.num_terms);
      const RunResult baseline = run_stream(
          cidx, stream, core::SchedulerPolicy::kRatioThreshold, configs[0]);
      for (const CacheConfig& cc : {configs[1], configs[3]}) {
        const RunResult r = run_stream(
            cidx, stream, core::SchedulerPolicy::kRatioThreshold, cc);
        const bool same = identical_topk(baseline, r);
        all_identical = all_identical && same;
        std::printf("%-9s %-6s %-5.1f %9.3f %9.3f %6.0f%% %8llu %5s\n",
                    co.name, cc.name, zipf, r.lat_ms.mean(),
                    r.lat_ms.percentile(99),
                    100.0 * r.cache.device_hit_rate(),
                    static_cast<unsigned long long>(r.cache.device_evictions),
                    same ? "yes" : "NO");

        bench::Json row = bench::Json::object();
        row["codec"] = co.name;
        row["cache"] = cc.name;
        row["zipf_s"] = zipf;
        row["latency_ms"] = bench::latency_json(r.lat_ms);
        row["device_hit_rate"] = r.cache.device_hit_rate();
        row["device_evictions"] = r.cache.device_evictions;
        row["compressed_docid_bytes"] = cidx.compressed_docid_bytes();
        row["identical_to_baseline"] = same;
        row["speedup_mean_vs_off"] = baseline.lat_ms.mean() / r.lat_ms.mean();
        codec_runs.push_back(std::move(row));
      }
    }
    std::printf("\n");
  }

  std::printf("(warm device cache removes the PCIe upload + allocation from\n"
              "every repeated heavy-term step, so mean and p99 drop vs 'off'\n"
              "and drop further the hotter the Zipf head; 'tight' shows the\n"
              "budget under eviction pressure. 'same' must read yes: caching\n"
              "is a pure cost optimization, results are bit-identical.)\n");

  bench::Json root = bench::Json::object();
  root["bench"] = "list_cache";
  root["fast_mode"] = bench::fast_mode();
  root["num_docs"] = cfg.num_docs;
  root["num_terms"] = cfg.num_terms;
  root["device_mem_bytes"] = static_cast<std::uint64_t>(device_mem);
  root["all_identical"] = all_identical;
  root["runs"] = std::move(runs);
  root["cpu_runs"] = std::move(cpu_runs);
  root["codec_runs"] = std::move(codec_runs);
  bench::write_bench_json("list_cache", root);

  if (!all_identical) {
    std::fprintf(stderr, "[list_cache] FAIL: cached results differ from "
                         "cache-off baseline\n");
    return 1;
  }
  return 0;
}
