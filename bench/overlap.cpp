// Extension bench — copy/compute overlap (DESIGN.md §10). Two sweeps:
//
//   1. Chunk-size x list-length grid on pair micro-indexes in the MergePath
//      regime (full decode of the longer list, so the payload H2D dominates):
//      per-query critical path vs serial stage sum as the double-buffer
//      chunk size varies. Too-small chunks drown in per-chunk kernel-launch
//      overhead — the serial cost inflates faster than the pipeline hides
//      copies — so the sweep exposes the tradeoff GpuOptions::copy_chunk_bytes
//      defaults around.
//
//   2. Prefetch on/off x double-buffer on/off on the paper corpus with the
//      hybrid engine: end-to-end latency, time saved by overlap, copy-engine
//      utilization, and the prefetch issue/use/drop counters.
//
// Emits BENCH_overlap.json under GRIFFIN_BENCH_JSON_DIR.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/hybrid_engine.h"
#include "util/stats.h"

using namespace griffin;

namespace {

index::InvertedIndex make_pair_index(const workload::ListPair& pair,
                                     index::DocId universe) {
  index::InvertedIndex idx(codec::Scheme::kEliasFano);
  idx.docs().resize(universe);
  idx.add_list(pair.shorter);
  idx.add_list(pair.shorter);
  idx.add_list(pair.longer);
  return idx;
}

const char* chunk_label(std::size_t bytes, char* buf, std::size_t n) {
  if (bytes == 0) {
    std::snprintf(buf, n, "off");
  } else {
    std::snprintf(buf, n, "%zuKiB", bytes >> 10);
  }
  return buf;
}

}  // namespace

int main() {
  bench::print_header(
      "Extension: copy/compute overlap — double buffering and prefetch",
      "stream pipelining hides PCIe under Para-EF; gains bound by the "
      "shorter of copy and compute");

  // ---- Sweep 1: chunk size x list length (GPU engine, MergePath regime) --
  util::Xoshiro256 rng(909);
  const index::DocId universe = 48'000'000;
  const std::vector<std::uint64_t> lengths =
      bench::fast_mode() ? std::vector<std::uint64_t>{100'000, 400'000}
                         : std::vector<std::uint64_t>{100'000, 400'000,
                                                      1'600'000};
  const std::vector<std::size_t> chunks = {0,
                                           std::size_t{64} << 10,
                                           std::size_t{256} << 10,
                                           std::size_t{1} << 20,
                                           std::size_t{4} << 20};

  std::printf("\nDouble-buffer chunk sweep (ratio 4, full-decode path; ms "
              "per query)\n");
  std::printf("%-10s %10s %10s %10s %8s %8s\n", "longer", "chunk", "serial",
              "critical", "saved", "h2d util");
  bench::Json grid = bench::Json::array();
  for (const std::uint64_t len : lengths) {
    const auto pair = workload::make_pair_with_ratio(len, 4.0, universe,
                                                     0.4, rng);
    const auto idx = make_pair_index(pair, universe);
    core::Query q;
    q.terms = {0, 1, 2};
    q.k = 10;
    for (const std::size_t chunk : chunks) {
      gpu::GpuOptions gopt;
      gopt.pooled_memory = false;
      gopt.list_cache = false;  // fresh uploads: the overlap-relevant case
      gopt.copy_chunk_bytes = chunk;
      gopt.double_buffer = chunk != 0;
      gpu::GpuEngine engine(idx, {}, gopt);
      const auto res = engine.execute(q);
      const auto& m = res.metrics;
      const double serial_ms = (m.total + m.overlap.saved).ms();
      const double critical_ms = m.total.ms();
      const double h2d_util =
          m.total.ps() > 0 ? double(m.overlap.h2d_busy.ps()) /
                                 double(m.total.ps())
                           : 0.0;
      char cl[24];
      std::printf("%-10llu %10s %10.3f %10.3f %7.1f%% %7.1f%%\n",
                  static_cast<unsigned long long>(len),
                  chunk_label(chunk, cl, sizeof(cl)), serial_ms, critical_ms,
                  serial_ms > 0.0
                      ? 100.0 * (serial_ms - critical_ms) / serial_ms
                      : 0.0,
                  100.0 * h2d_util);

      bench::Json row = bench::Json::object();
      row["longer_len"] = len;
      row["chunk_bytes"] = static_cast<std::uint64_t>(chunk);
      row["serial_ms"] = serial_ms;
      row["critical_ms"] = critical_ms;
      row["saved_ms"] = serial_ms - critical_ms;
      row["h2d_utilization"] = h2d_util;
      row["gpu_kernels"] = m.gpu_kernels;
      grid.push_back(std::move(row));
    }
  }

  // ---- Sweep 2: prefetch x double buffering on the paper corpus ----
  const auto cfg = bench::paper_corpus_config();
  std::fprintf(stderr, "[overlap] building/loading corpus...\n");
  const auto idx = bench::cached_corpus(cfg);
  auto qcfg = bench::paper_query_config(200, cfg);
  const auto log = workload::generate_query_log(qcfg, cfg.num_terms);

  std::printf("\nHybrid engine on the paper corpus (%zu queries; ms per "
              "query)\n",
              log.size());
  std::printf("%-22s %10s %10s %8s %8s %18s\n", "config", "serial",
              "critical", "saved", "h2d util", "prefetch i/u/d");
  bench::Json configs = bench::Json::array();
  double base_ms = -1.0, full_ms = -1.0;
  for (const bool prefetch : {false, true}) {
    for (const bool dbuf : {false, true}) {
      core::HybridOptions opt;
      opt.scheduler.prefetch = prefetch;
      opt.gpu.double_buffer = dbuf;
      core::HybridEngine engine(idx, {}, opt);
      double serial_ms = 0.0, critical_ms = 0.0;
      sim::Duration h2d_busy;
      core::OverlapCounters overlap;
      for (const auto& q : log) {
        const auto res = engine.execute(q);
        const auto& m = res.metrics;
        serial_ms += (m.total + m.overlap.saved).ms();
        critical_ms += m.total.ms();
        h2d_busy += m.overlap.h2d_busy;
        overlap += m.overlap;
      }
      const auto n = static_cast<double>(log.size());
      serial_ms /= n;
      critical_ms /= n;
      const double h2d_util =
          critical_ms > 0.0 ? h2d_busy.ms() / n / critical_ms : 0.0;
      char label[32];
      std::snprintf(label, sizeof(label), "prefetch=%d dbuffer=%d",
                    prefetch ? 1 : 0, dbuf ? 1 : 0);
      if (!prefetch && !dbuf) base_ms = critical_ms;
      if (prefetch && dbuf) full_ms = critical_ms;
      std::printf("%-22s %10.3f %10.3f %7.1f%% %7.1f%% %10llu/%llu/%llu\n",
                  label, serial_ms, critical_ms,
                  serial_ms > 0.0
                      ? 100.0 * (serial_ms - critical_ms) / serial_ms
                      : 0.0,
                  100.0 * h2d_util,
                  static_cast<unsigned long long>(overlap.prefetch_issued),
                  static_cast<unsigned long long>(overlap.prefetch_used),
                  static_cast<unsigned long long>(overlap.prefetch_dropped));

      // Per-resource busy fractions over the run's summed critical path:
      // the single-tenant baseline the multi_tenant bench compares against.
      std::array<double, sim::kNumResources> util{};
      if (critical_ms > 0.0) {
        for (std::size_t r = 0; r < sim::kNumResources; ++r) {
          util[r] =
              overlap.busy(static_cast<sim::Resource>(r)).ms() /
              (critical_ms * n);
        }
      }

      bench::Json row = bench::Json::object();
      row["prefetch"] = prefetch;
      row["double_buffer"] = dbuf;
      row["serial_ms"] = serial_ms;
      row["critical_ms"] = critical_ms;
      row["saved_ms"] = serial_ms - critical_ms;
      row["h2d_utilization"] = h2d_util;
      row["resource_utilization"] = bench::resource_utilization_json(util);
      row["overlap"] = bench::overlap_json(overlap);
      configs.push_back(std::move(row));
    }
  }
  if (base_ms > 0.0 && full_ms > 0.0) {
    std::printf("\nOverlap speedup (both mechanisms vs neither): %.2fx\n",
                base_ms / full_ms);
  }

  bench::Json root = bench::Json::object();
  root["bench"] = "overlap";
  root["fast_mode"] = bench::fast_mode();
  root["chunk_sweep"] = std::move(grid);
  root["paper_corpus_configs"] = std::move(configs);
  if (base_ms > 0.0 && full_ms > 0.0) {
    root["overlap_speedup"] = base_ms / full_ms;
  }
  bench::write_bench_json("overlap", root);
  return 0;
}
