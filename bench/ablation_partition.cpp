// Ablation — MergePath partition size. GPU MergePath sizes partitions so a
// pair of staging tiles fits in shared memory (paper §3.1.2). Too-small
// partitions waste the partition-search work and under-fill warps; too-big
// ones overflow shared memory. This sweeps items-per-thread (partition size
// = items_per_thread x 128 threads).
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "gpu/mergepath.h"
#include "util/rng.h"

using namespace griffin;

int main() {
  bench::print_header(
      "Ablation: MergePath partition size (items per thread x 128 threads)",
      "partitions must fill warps yet fit the 48 KB shared staging tiles");

  const sim::HardwareSpec hw;
  const sim::GpuCostModel model(hw.gpu);
  const pcie::Link link(hw.pcie);
  util::Xoshiro256 rng(99);

  const std::uint64_t n = bench::fast_mode() ? 200'000 : 2'000'000;
  const auto pair = workload::make_pair_with_ratio(n, 2.0, 64'000'000, 0.4, rng);

  simt::Device dev(hw.gpu, hw.pcie.device_mem_bytes);
  auto da = dev.alloc<index::DocId>(pair.shorter.size());
  dev.upload(da, std::span<const index::DocId>(pair.shorter));
  auto db = dev.alloc<index::DocId>(pair.longer.size());
  dev.upload(db, std::span<const index::DocId>(pair.longer));

  std::printf("longer list: %llu, shorter: %llu\n\n",
              static_cast<unsigned long long>(pair.longer.size()),
              static_cast<unsigned long long>(pair.shorter.size()));
  std::printf("%-16s %12s %14s %12s\n", "items/thread", "partition",
              "kernel time(ms)", "warp cycles");

  for (const std::uint32_t vt : {1u, 2u, 4u, 8u, 16u, 32u}) {
    gpu::MergeTuning tuning;
    tuning.items_per_thread = vt;
    pcie::TransferLedger ledger;
    auto r = gpu::mergepath_intersect(dev, da, pair.shorter.size(), db,
                                      pair.longer.size(), link, ledger,
                                      tuning);
    const double ms = (model.kernel_time(r.stats) + ledger.total).ms();
    std::printf("%-16u %12u %14.3f %12.0f\n", vt, vt * tuning.threads, ms,
                r.stats.warp_cycles);
  }
  std::printf("\n(default: 8 items/thread -> 1024-element partitions, the\n"
              "ModernGPU-style setting the paper builds on)\n");
  return 0;
}
