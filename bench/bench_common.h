// Shared utilities for the reproduction benches: the paper-testbed hardware
// spec, corpus caching (indexes are built once and memoized on disk via
// index/io.h), simple aligned table printing, and a scale knob.
//
// Environment:
//   GRIFFIN_FAST=1         shrink workloads ~10x (smoke-test mode)
//   GRIFFIN_CACHE_DIR=...  corpus cache directory (default /tmp/griffin_bench)
//   GRIFFIN_BENCH_JSON_DIR=...  where BENCH_<name>.json files go (default cwd)
//   GRIFFIN_TRACE_DIR=...  when set, benches that support it write per-query
//                          plan-step traces as <bench>.trace.jsonl there
#pragma once

#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "core/query.h"
#include "index/io.h"
#include "util/stats.h"
#include "workload/corpus.h"
#include "workload/querylog.h"

namespace griffin::bench {

inline bool fast_mode() {
  const char* v = std::getenv("GRIFFIN_FAST");
  return v != nullptr && v[0] == '1';
}

/// Scales a workload size down in fast mode.
inline std::uint64_t scaled(std::uint64_t n) {
  return fast_mode() ? std::max<std::uint64_t>(n / 10, 1) : n;
}

inline std::string cache_dir() {
  const char* v = std::getenv("GRIFFIN_CACHE_DIR");
  std::string dir = v != nullptr ? v : "/tmp/griffin_bench";
  std::filesystem::create_directories(dir);
  return dir;
}

/// Builds (or loads from cache) the corpus described by cfg. The cache key
/// folds in every config field that affects the output.
inline index::InvertedIndex cached_corpus(const workload::CorpusConfig& cfg) {
  char key[256];
  std::snprintf(key, sizeof(key), "corpus_%u_%u_%.3f_%.3f_%u_%u%s_%u_%llu.idx",
                cfg.num_docs, cfg.num_terms, cfg.max_list_divisor, cfg.zipf_s,
                cfg.min_list_size, static_cast<unsigned>(cfg.scheme),
                cfg.adaptive ? "a" : "", cfg.block_size,
                static_cast<unsigned long long>(cfg.seed));
  const std::string path = cache_dir() + "/" + key;
  if (std::filesystem::exists(path)) {
    try {
      return index::load_index(path);
    } catch (const std::exception&) {
      std::filesystem::remove(path);
    }
  }
  auto idx = workload::generate_corpus(cfg);
  try {
    index::save_index(idx, path);
  } catch (const std::exception&) {
    // Cache misses are fine; the bench still runs.
  }
  return idx;
}

/// The corpus the end-to-end experiments (Figures 10/11/14/15) run on: the
/// scaled-down ClueWeb12 stand-in (DESIGN.md §2).
inline workload::CorpusConfig paper_corpus_config() {
  workload::CorpusConfig cfg;
  cfg.num_docs = fast_mode() ? 1'000'000 : 6'000'000;
  cfg.num_terms = fast_mode() ? 1'000 : 8'000;
  cfg.max_list_divisor = 3.0;
  cfg.zipf_s = 0.75;
  cfg.min_list_size = 512;
  // Coarse topics put multi-million-entry lists inside every topic, so
  // topical queries hit the heavy-list regime the paper's latencies reflect.
  cfg.num_topics = 8;
  cfg.topic_affinity = 0.45;
  cfg.seed = 20260705;
  return cfg;
}

inline workload::QueryLogConfig paper_query_config(
    std::uint32_t n, const workload::CorpusConfig& corpus) {
  workload::QueryLogConfig qcfg;
  qcfg.num_queries = static_cast<std::uint32_t>(scaled(n));
  // Real query logs skew hard toward frequent terms (stopword-adjacent
  // terms dominate TREC efficiency-track queries), which is what gives the
  // paper its long CPU latencies on frequent-term queries; and most queries
  // are topical, so their terms' lists genuinely overlap.
  qcfg.term_zipf_s = 1.6;
  qcfg.num_topics = corpus.num_topics;
  qcfg.topical_fraction = 0.9;
  qcfg.seed = 4242;
  return qcfg;
}

// ---- Machine-readable results (BENCH_<name>.json) ----
//
// A tiny self-contained JSON value tree: just enough for the benches to emit
// their tables as structured records CI can archive and diff across commits.
// Objects keep insertion order so the files are stable and reviewable.

class Json {
 public:
  Json() : v_(nullptr) {}
  Json(bool b) : v_(b) {}                            // NOLINT(runtime/explicit)
  Json(double d) : v_(d) {}                          // NOLINT(runtime/explicit)
  Json(int i) : v_(static_cast<double>(i)) {}        // NOLINT(runtime/explicit)
  Json(unsigned u) : v_(static_cast<double>(u)) {}   // NOLINT(runtime/explicit)
  Json(std::uint64_t u) : v_(static_cast<double>(u)) {}  // NOLINT
  Json(const char* s) : v_(std::string(s)) {}        // NOLINT(runtime/explicit)
  Json(std::string s) : v_(std::move(s)) {}          // NOLINT(runtime/explicit)

  static Json object() { Json j; j.v_ = Members{}; return j; }
  static Json array() { Json j; j.v_ = Elements{}; return j; }

  /// Object access; inserts a null member on first use of a key.
  Json& operator[](const std::string& key) {
    if (!std::holds_alternative<Members>(v_)) v_ = Members{};
    auto& members = std::get<Members>(v_);
    for (auto& [k, val] : members) {
      if (k == key) return val;
    }
    members.emplace_back(key, Json{});
    return members.back().second;
  }

  void push_back(Json j) {
    if (!std::holds_alternative<Elements>(v_)) v_ = Elements{};
    std::get<Elements>(v_).push_back(std::move(j));
  }

  std::string dump(int indent = 0) const {
    std::string out;
    write(out, indent);
    return out;
  }

  /// Compact single-line form (no whitespace): one JSONL record per call.
  std::string dump_line() const {
    std::string out;
    write_line(out);
    return out;
  }

 private:
  using Members = std::vector<std::pair<std::string, Json>>;
  using Elements = std::vector<Json>;

  static void write_escaped(std::string& out, const std::string& s) {
    out += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
  }

  void write(std::string& out, int indent) const {
    const std::string pad(static_cast<std::size_t>(indent), ' ');
    if (std::holds_alternative<std::nullptr_t>(v_)) {
      out += "null";
    } else if (const bool* b = std::get_if<bool>(&v_)) {
      out += *b ? "true" : "false";
    } else if (const double* d = std::get_if<double>(&v_)) {
      if (!std::isfinite(*d)) {
        out += "null";  // JSON has no inf/nan
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.12g", *d);
        out += buf;
      }
    } else if (const std::string* s = std::get_if<std::string>(&v_)) {
      write_escaped(out, *s);
    } else if (const Elements* els = std::get_if<Elements>(&v_)) {
      if (els->empty()) { out += "[]"; return; }
      out += "[\n";
      for (std::size_t i = 0; i < els->size(); ++i) {
        out += pad + "  ";
        (*els)[i].write(out, indent + 2);
        out += i + 1 < els->size() ? ",\n" : "\n";
      }
      out += pad + "]";
    } else if (const Members* ms = std::get_if<Members>(&v_)) {
      if (ms->empty()) { out += "{}"; return; }
      out += "{\n";
      for (std::size_t i = 0; i < ms->size(); ++i) {
        out += pad + "  ";
        write_escaped(out, (*ms)[i].first);
        out += ": ";
        (*ms)[i].second.write(out, indent + 2);
        out += i + 1 < ms->size() ? ",\n" : "\n";
      }
      out += pad + "}";
    }
  }

  void write_line(std::string& out) const {
    if (std::holds_alternative<std::nullptr_t>(v_)) {
      out += "null";
    } else if (const bool* b = std::get_if<bool>(&v_)) {
      out += *b ? "true" : "false";
    } else if (const double* d = std::get_if<double>(&v_)) {
      if (!std::isfinite(*d)) {
        out += "null";
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.12g", *d);
        out += buf;
      }
    } else if (const std::string* s = std::get_if<std::string>(&v_)) {
      write_escaped(out, *s);
    } else if (const Elements* els = std::get_if<Elements>(&v_)) {
      out += '[';
      for (std::size_t i = 0; i < els->size(); ++i) {
        if (i > 0) out += ',';
        (*els)[i].write_line(out);
      }
      out += ']';
    } else if (const Members* ms = std::get_if<Members>(&v_)) {
      out += '{';
      for (std::size_t i = 0; i < ms->size(); ++i) {
        if (i > 0) out += ',';
        write_escaped(out, (*ms)[i].first);
        out += ':';
        (*ms)[i].second.write_line(out);
      }
      out += '}';
    }
  }

  std::variant<std::nullptr_t, bool, double, std::string, Elements, Members>
      v_;
};

// ---- Plan-step traces (QueryResult::trace) as JSON ----

inline const char* step_kind_name(core::StepKind k) {
  switch (k) {
    case core::StepKind::kDecode: return "decode";
    case core::StepKind::kIntersect: return "intersect";
    case core::StepKind::kTransfer: return "transfer";
    case core::StepKind::kRank: return "rank";
    case core::StepKind::kPrefetch: return "prefetch";
    case core::StepKind::kHostDecode: return "host_decode";
  }
  return "?";
}

inline const char* placement_name(core::Placement p) {
  switch (p) {
    case core::Placement::kCpu: return "cpu";
    case core::Placement::kGpu: return "gpu";
    case core::Placement::kSplit: return "split";
  }
  return "?";
}

/// One StepRecord as a JSON object (durations in microseconds).
inline Json step_json(const core::StepRecord& r) {
  Json j = Json::object();
  j["kind"] = step_kind_name(r.kind);
  j["placement"] = placement_name(r.placement);
  // Attribution under multi-tenancy: which query charged this step, and the
  // cross-query batch group it launched in (0 = unbatched).
  j["query"] = r.query;
  if (r.batch_group != 0) j["batch_group"] = r.batch_group;
  if (r.kind == core::StepKind::kDecode ||
      r.kind == core::StepKind::kIntersect ||
      r.kind == core::StepKind::kPrefetch ||
      r.kind == core::StepKind::kHostDecode) {
    j["term"] = static_cast<std::uint64_t>(r.term);
  }
  if (r.kind == core::StepKind::kIntersect) {
    if (r.placement == core::Placement::kSplit) j["alpha"] = r.alpha;
    j["shorter"] = r.shape.shorter;
    j["longer"] = r.shape.longer;
    j["longer_device_resident"] = r.shape.longer_device_resident;
    j["longer_host_decoded"] = r.shape.longer_host_decoded;
    j["longer_prefetched"] = r.shape.longer_prefetched;
  }
  if (r.kind == core::StepKind::kTransfer) j["migration"] = r.migration;
  if (r.faulted) j["faulted"] = true;
  j["output_count"] = r.output_count;
  if (r.gpu_kernels > 0) j["gpu_kernels"] = r.gpu_kernels;
  j["us"] = r.duration.us();
  if (r.decode.ps() > 0) j["decode_us"] = r.decode.us();
  if (r.intersect.ps() > 0) j["intersect_us"] = r.intersect.us();
  if (r.transfer.ps() > 0) j["transfer_us"] = r.transfer.us();
  if (r.rank.ps() > 0) j["rank_us"] = r.rank.us();
  // Timeline placement (DESIGN.md §10): where and when the step's ops ran.
  j["resource"] = sim::resource_name(r.resource);
  j["issue_us"] = r.issue.us();
  j["start_us"] = r.start.us();
  j["end_us"] = r.end.us();
  return j;
}

/// JSONL sink for per-query plan traces, active only when GRIFFIN_TRACE_DIR
/// is set. Each write() appends one line:
///   {"engine":...,"query":N,"terms":T,"k":K,"total_us":...,"steps":[...]}
class TraceWriter {
 public:
  explicit TraceWriter(const std::string& bench_name) {
    const char* dir = std::getenv("GRIFFIN_TRACE_DIR");
    if (dir == nullptr) return;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    path_ = std::string(dir) + "/" + bench_name + ".trace.jsonl";
    f_ = std::fopen(path_.c_str(), "w");
    if (f_ == nullptr) {
      std::fprintf(stderr, "[bench] could not open %s\n", path_.c_str());
    }
  }
  ~TraceWriter() {
    if (f_ != nullptr) {
      std::fclose(f_);
      std::fprintf(stderr, "[bench] wrote %s (%llu records)\n", path_.c_str(),
                   static_cast<unsigned long long>(records_));
    }
  }
  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  bool enabled() const { return f_ != nullptr; }

  void write(const char* engine, std::uint64_t query_id, const core::Query& q,
             const core::QueryResult& res) {
    if (f_ == nullptr) return;
    Json line = Json::object();
    line["engine"] = engine;
    line["query"] = query_id;
    line["terms"] = static_cast<std::uint64_t>(q.terms.size());
    line["k"] = static_cast<std::uint64_t>(q.k);
    line["total_us"] = res.metrics.total.us();
    line["results"] = res.metrics.result_count;
    line["migrations"] = res.metrics.migrations;
    Json steps = Json::array();
    for (const auto& r : res.trace) steps.push_back(step_json(r));
    line["steps"] = std::move(steps);
    const std::string text = line.dump_line() + "\n";
    std::fwrite(text.data(), 1, text.size(), f_);
    ++records_;
  }

 private:
  std::string path_;
  std::FILE* f_ = nullptr;
  std::uint64_t records_ = 0;
};

/// Copy/compute-overlap counters (DESIGN.md §10) as a JSON object.
inline Json overlap_json(const core::OverlapCounters& o) {
  Json j = Json::object();
  j["saved_us"] = o.saved.us();
  j["prefetch_issued"] = o.prefetch_issued;
  j["prefetch_used"] = o.prefetch_used;
  j["prefetch_dropped"] = o.prefetch_dropped;
  j["cpu_busy_us"] = o.cpu_busy.us();
  j["gpu_busy_us"] = o.gpu_busy.us();
  j["h2d_busy_us"] = o.h2d_busy.us();
  j["d2h_busy_us"] = o.d2h_busy.us();
  return j;
}

/// Per-resource busy fractions (sim::Resource order) as a JSON object.
inline Json resource_utilization_json(
    const std::array<double, sim::kNumResources>& u) {
  Json j = Json::object();
  for (std::size_t r = 0; r < sim::kNumResources; ++r) {
    j[sim::resource_name(static_cast<sim::Resource>(r))] = u[r];
  }
  return j;
}

/// Fault/degradation counters (DESIGN.md §11/§16) as a JSON object.
inline Json fault_json(const fault::FaultCounters& f) {
  Json j = Json::object();
  j["gpu_faults"] = f.gpu_faults;
  j["pcie_errors"] = f.pcie_errors;
  j["split_leg_faults"] = f.split_leg_faults;
  j["prefetch_faults"] = f.prefetch_faults;
  j["oom_faults"] = f.oom_faults;
  j["oom_evictions"] = f.oom_evictions;
  j["oom_evicted_bytes"] = f.oom_evicted_bytes;
  j["oom_unfused"] = f.oom_unfused;
  j["oom_degraded_steps"] = f.oom_degraded_steps;
  j["gpu_wasted_us"] = f.gpu_wasted.us();
  j["pcie_retry_us"] = f.pcie_retry_time.us();
  j["oom_recovery_us"] = f.oom_recovery.us();
  j["replica_failures"] = f.replica_failures;
  j["failovers"] = f.failovers;
  j["slow_replicas"] = f.slow_replicas;
  j["backoff_us"] = f.backoff_time.us();
  j["breaker_opens"] = f.breaker_opens;
  j["breaker_short_circuits"] = f.breaker_short_circuits;
  j["deadline_misses"] = f.deadline_misses;
  j["shards_dropped"] = f.shards_dropped;
  j["degraded_queries"] = f.degraded_queries;
  j["shed_queries"] = f.shed_queries;
  return j;
}

/// Latency distribution as a JSON object (ms units throughout the benches).
inline Json latency_json(const util::PercentileTracker& t) {
  Json j = Json::object();
  j["count"] = static_cast<std::uint64_t>(t.count());
  if (t.count() > 0) {
    j["mean"] = t.mean();
    j["p50"] = t.percentile(50);
    j["p95"] = t.percentile(95);
    j["p99"] = t.percentile(99);
    j["max"] = t.max();
    // Sequential service rate of one node at these latencies.
    j["throughput_qps"] = t.mean() > 0.0 ? 1000.0 / t.mean() : 0.0;
  }
  return j;
}

/// Writes BENCH_<name>.json under GRIFFIN_BENCH_JSON_DIR (default: cwd).
/// Benches call this once at exit with their full result tree; failures are
/// reported but never abort the bench (the printed table is the primary
/// output, the JSON a CI artifact).
inline void write_bench_json(const std::string& name, const Json& root) {
  const char* env = std::getenv("GRIFFIN_BENCH_JSON_DIR");
  std::string dir = env != nullptr ? env : ".";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "[bench] could not write %s\n", path.c_str());
    return;
  }
  const std::string text = root.dump() + "\n";
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "[bench] wrote %s\n", path.c_str());
}

// ---- Table printing ----

inline void print_header(const char* title, const char* paper_note) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("paper: %s\n", paper_note);
  std::printf("================================================================\n");
}

inline void print_row_labels(const char* a) { std::printf("%s\n", a); }

}  // namespace griffin::bench
