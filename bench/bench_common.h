// Shared utilities for the reproduction benches: the paper-testbed hardware
// spec, corpus caching (indexes are built once and memoized on disk via
// index/io.h), simple aligned table printing, and a scale knob.
//
// Environment:
//   GRIFFIN_FAST=1         shrink workloads ~10x (smoke-test mode)
//   GRIFFIN_CACHE_DIR=...  corpus cache directory (default /tmp/griffin_bench)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "index/io.h"
#include "workload/corpus.h"
#include "workload/querylog.h"

namespace griffin::bench {

inline bool fast_mode() {
  const char* v = std::getenv("GRIFFIN_FAST");
  return v != nullptr && v[0] == '1';
}

/// Scales a workload size down in fast mode.
inline std::uint64_t scaled(std::uint64_t n) {
  return fast_mode() ? std::max<std::uint64_t>(n / 10, 1) : n;
}

inline std::string cache_dir() {
  const char* v = std::getenv("GRIFFIN_CACHE_DIR");
  std::string dir = v != nullptr ? v : "/tmp/griffin_bench";
  std::filesystem::create_directories(dir);
  return dir;
}

/// Builds (or loads from cache) the corpus described by cfg. The cache key
/// folds in every config field that affects the output.
inline index::InvertedIndex cached_corpus(const workload::CorpusConfig& cfg) {
  char key[256];
  std::snprintf(key, sizeof(key), "corpus_%u_%u_%.3f_%.3f_%u_%u_%u_%llu.idx",
                cfg.num_docs, cfg.num_terms, cfg.max_list_divisor, cfg.zipf_s,
                cfg.min_list_size, static_cast<unsigned>(cfg.scheme),
                cfg.block_size,
                static_cast<unsigned long long>(cfg.seed));
  const std::string path = cache_dir() + "/" + key;
  if (std::filesystem::exists(path)) {
    try {
      return index::load_index(path);
    } catch (const std::exception&) {
      std::filesystem::remove(path);
    }
  }
  auto idx = workload::generate_corpus(cfg);
  try {
    index::save_index(idx, path);
  } catch (const std::exception&) {
    // Cache misses are fine; the bench still runs.
  }
  return idx;
}

/// The corpus the end-to-end experiments (Figures 10/11/14/15) run on: the
/// scaled-down ClueWeb12 stand-in (DESIGN.md §2).
inline workload::CorpusConfig paper_corpus_config() {
  workload::CorpusConfig cfg;
  cfg.num_docs = fast_mode() ? 1'000'000 : 6'000'000;
  cfg.num_terms = fast_mode() ? 1'000 : 8'000;
  cfg.max_list_divisor = 3.0;
  cfg.zipf_s = 0.75;
  cfg.min_list_size = 512;
  // Coarse topics put multi-million-entry lists inside every topic, so
  // topical queries hit the heavy-list regime the paper's latencies reflect.
  cfg.num_topics = 8;
  cfg.topic_affinity = 0.45;
  cfg.seed = 20260705;
  return cfg;
}

inline workload::QueryLogConfig paper_query_config(
    std::uint32_t n, const workload::CorpusConfig& corpus) {
  workload::QueryLogConfig qcfg;
  qcfg.num_queries = static_cast<std::uint32_t>(scaled(n));
  // Real query logs skew hard toward frequent terms (stopword-adjacent
  // terms dominate TREC efficiency-track queries), which is what gives the
  // paper its long CPU latencies on frequent-term queries; and most queries
  // are topical, so their terms' lists genuinely overlap.
  qcfg.term_zipf_s = 1.6;
  qcfg.num_topics = corpus.num_topics;
  qcfg.topical_fraction = 0.9;
  qcfg.seed = 4242;
  return qcfg;
}

// ---- Table printing ----

inline void print_header(const char* title, const char* paper_note) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("paper: %s\n", paper_note);
  std::printf("================================================================\n");
}

inline void print_row_labels(const char* a) { std::printf("%s\n", a); }

}  // namespace griffin::bench
