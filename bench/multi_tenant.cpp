// Extension bench — multi-tenant device sharing (DESIGN.md §12). The
// single-tenant service sim leaves the device mostly idle between a query's
// own steps: one query's H2D copy cannot ride under another query's kernels
// because every query owns a private timeline. The DeviceManager shares ONE
// timeline across an admission window of concurrent queries, and optionally
// fuses compatible GPU steps from co-admitted queries into batched launches.
//
// Sweep: concurrency {1,2,4,8} x batching {off,on} x offered load, against
// the sequential FCFS baseline on identical queries. Reported per cell:
// response percentiles, sustained throughput, per-resource busy fractions
// (watch H2D climb from the ~5% single-tenant figure), cross-query batch
// counts, and shed queries. Results stay bit-identical to sequential
// execution (test_tenancy's golden parity test); only timing moves.
//
// Emits BENCH_multi_tenant.json under GRIFFIN_BENCH_JSON_DIR. The output is
// deterministic: CI runs this bench twice and diffs the JSON byte-for-byte.
#include <cstdio>
#include <span>
#include <vector>

#include "bench_common.h"
#include "core/hybrid_engine.h"
#include "service/service_sim.h"
#include "tenancy/device_manager.h"

using namespace griffin;

int main() {
  auto cfg = bench::paper_corpus_config();
  cfg.num_docs = bench::fast_mode() ? 500'000 : 3'000'000;
  cfg.num_terms = bench::fast_mode() ? 300 : 2'000;
  std::fprintf(stderr, "[multi_tenant] building/loading corpus...\n");
  const auto idx = bench::cached_corpus(cfg);

  auto qcfg = bench::paper_query_config(200, cfg);
  const auto log = workload::generate_query_log(qcfg, cfg.num_terms);

  bench::print_header(
      "Extension: multi-tenant device — shared timeline + cross-query "
      "batching",
      "future work in the paper: heavy system loads with multiple users");

  // ---- Sequential FCFS baseline (one query owns the device at a time) ----
  core::HybridEngine griffin(idx);
  std::fprintf(stderr, "[multi_tenant] measuring sequential baseline...\n");
  core::OverlapCounters base_overlap;
  const auto base_times = service::measure_service_times(
      griffin, log, nullptr, nullptr, &base_overlap);

  // The sweep is in units of the sequential node's capacity (1/mean
  // service time): rho < 1 is comfortable, rho ~ 1 saturates a sequential
  // device, rho > 1 is only sustainable if concurrency + batching buy real
  // throughput. Fixed qps values would leave the fast-mode corpus idle.
  sim::Duration svc_sum;
  for (const auto& t : base_times) svc_sum += t;
  const double mean_svc_ms =
      base_times.empty() ? 1.0 : svc_sum.ms() / double(base_times.size());
  const double capacity_qps = mean_svc_ms > 0.0 ? 1000.0 / mean_svc_ms : 1.0;
  const std::vector<double> rhos = {0.6, 1.2, 2.5};
  std::printf("sequential capacity ~%.0f qps (mean service %.3f ms)\n\n",
              capacity_qps, mean_svc_ms);

  std::printf("%-10s %-6s %-6s %10s %10s %10s %9s %7s %7s %7s\n",
              "load(qps)", "conc", "batch", "p50 resp", "p95 resp",
              "p99 resp", "qps out", "h2d", "gpu", "groups");
  bench::Json rows = bench::Json::array();

  for (const double rho : rhos) {
    const double qps = rho * capacity_qps;
    service::ServiceConfig scfg;
    scfg.arrival_qps = qps;
    const auto rb = service::run_service(
        std::span<const sim::Duration>(base_times), scfg);
    std::array<double, sim::kNumResources> ub{};
    if (rb.horizon.ps() > 0) {
      for (std::size_t r = 0; r < sim::kNumResources; ++r) {
        ub[r] = base_overlap.busy(static_cast<sim::Resource>(r)) / rb.horizon;
      }
    }
    const double base_qps_out =
        rb.horizon.ms() > 0.0
            ? 1000.0 * double(rb.response_ms.count()) / rb.horizon.ms()
            : 0.0;
    std::printf("%-10.0f %-6s %-6s %10.2f %10.2f %10.2f %9.1f %6.1f%% "
                "%6.1f%% %7s\n",
                qps, "seq", "-", rb.response_ms.percentile(50),
                rb.response_ms.percentile(95), rb.response_ms.percentile(99),
                base_qps_out,
                100.0 * ub[std::size_t(sim::Resource::kCopyH2D)],
                100.0 * ub[std::size_t(sim::Resource::kGpuCompute)], "-");
    bench::Json row = bench::Json::object();
    row["rho"] = rho;
    row["qps"] = qps;
    row["mode"] = "sequential";
    row["response"] = bench::latency_json(rb.response_ms);
    row["sustained_qps"] = base_qps_out;
    row["resource_utilization"] = bench::resource_utilization_json(ub);
    row["horizon_ms"] = rb.horizon.ms();
    rows.push_back(std::move(row));

    // ---- Multi-tenant cells: admission window x batching ----
    for (const std::uint32_t conc : {1u, 2u, 4u, 8u}) {
      for (const bool batching : {false, true}) {
        tenancy::TenancyOptions topt;
        topt.max_concurrency = conc;
        topt.batch.enabled = batching;
        tenancy::DeviceManager device(idx, {}, topt);
        const auto rt = service::run_service(device, log, scfg);
        const double qps_out =
            rt.horizon.ms() > 0.0
                ? 1000.0 * double(rt.response_ms.count()) / rt.horizon.ms()
                : 0.0;
        std::printf("%-10.0f %-6u %-6s %10.2f %10.2f %10.2f %9.1f %6.1f%% "
                    "%6.1f%% %7llu\n",
                    qps, conc, batching ? "on" : "off",
                    rt.response_ms.percentile(50),
                    rt.response_ms.percentile(95),
                    rt.response_ms.percentile(99), qps_out,
                    100.0 * rt.resource_utilization[std::size_t(
                                sim::Resource::kCopyH2D)],
                    100.0 * rt.resource_utilization[std::size_t(
                                sim::Resource::kGpuCompute)],
                    static_cast<unsigned long long>(device.batch_groups()));
        bench::Json cell = bench::Json::object();
        cell["rho"] = rho;
        cell["qps"] = qps;
        cell["mode"] = "tenant";
        cell["concurrency"] = conc;
        cell["batching"] = batching;
        cell["response"] = bench::latency_json(rt.response_ms);
        cell["service"] = bench::latency_json(rt.service_ms);
        cell["sustained_qps"] = qps_out;
        cell["utilization"] = rt.utilization;
        cell["resource_utilization"] =
            bench::resource_utilization_json(rt.resource_utilization);
        cell["horizon_ms"] = rt.horizon.ms();
        cell["batch_groups"] = device.batch_groups();
        cell["batched_steps"] = rt.trace.batched_steps;
        cell["overlap_saved_us"] = rt.engine_overlap.saved.us();
        cell["shed"] = rt.shed_queries();
        rows.push_back(std::move(cell));
      }
    }
  }

  std::printf("\n(qps out = completed queries / device makespan; h2d/gpu = "
              "shared-timeline\nbusy fractions. Concurrency feeds the copy "
              "engines work from many queries\nat once; batching fuses "
              "co-admitted GPU steps into shared launches.)\n");

  bench::Json root = bench::Json::object();
  root["bench"] = "multi_tenant";
  root["fast_mode"] = bench::fast_mode();
  root["queries"] = static_cast<std::uint64_t>(log.size());
  root["cells"] = std::move(rows);
  bench::write_bench_json("multi_tenant", root);
  return 0;
}
