// Figure 12 — decompression speed: CPU PForDelta (sequential decode of the
// whole list) vs Griffin-GPU Para-EF, grouped by list size 1K..10M. The
// paper reports speedups below 2 for short lists rising to ~29.6x at 10M:
// long lists saturate the GPU and amortize transfer/launch overheads. Times
// are simulated (sim::HardwareSpec paper testbed); the GPU column includes
// one device allocation, the payload transfer, and the kernel launch per
// list — the costs §2.3 says dominate until lists grow long.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "cpu/decode.h"
#include "gpu/ef_decode.h"
#include "util/rng.h"

using namespace griffin;

int main() {
  bench::print_header(
      "Figure 12: Decompression Speed Comparison (CPU PFor vs Para-EF)",
      "speedup <2 at 1K-10K rising to ~29.6x at 10M");

  const sim::HardwareSpec hw;
  const sim::GpuCostModel gpu_model(hw.gpu);
  const pcie::Link link(hw.pcie);
  util::Xoshiro256 rng(123);

  std::printf("%-10s %14s %14s %10s\n", "list size", "CPU PFor (ms)",
              "GPU ParaEF(ms)", "speedup");

  std::vector<std::uint64_t> sizes{1'000, 10'000, 100'000, 1'000'000,
                                   10'000'000};
  if (bench::fast_mode()) sizes.pop_back();
  for (const std::uint64_t n : sizes) {
    const int reps = n <= 100'000 ? 3 : 1;
    double cpu_ms = 0.0, gpu_ms = 0.0;
    for (int r = 0; r < reps; ++r) {
      // Density 1/32 — the typical mid-frequency web term.
      const auto universe = static_cast<index::DocId>(
          std::min<std::uint64_t>(n * 32ull, 0xFFFFFFF0ull));
      const auto docs = workload::make_uniform_list(n, universe, rng);

      // CPU: PForDelta full decompression.
      const auto pf =
          codec::BlockCompressedList::build(docs, codec::Scheme::kPForDelta);
      sim::CpuCostAccumulator acc(hw.cpu);
      std::vector<index::DocId> out;
      cpu::decode_all(pf, out, acc);
      cpu_ms += acc.time().ms();

      // GPU: Para-EF. Payload transfer + decode kernel.
      const auto ef =
          codec::BlockCompressedList::build(docs, codec::Scheme::kEliasFano);
      simt::Device dev(hw.gpu, hw.pcie.device_mem_bytes);
      pcie::TransferLedger ledger;
      gpu::DeviceList dlist = gpu::upload_list(dev, ef, link, ledger);
      auto dout = dev.alloc<index::DocId>(ef.size());
      const auto stats =
          gpu::ef_decode_range(dev, dlist, 0, dlist.num_blocks(), dout);
      const sim::Duration gpu_time = link.alloc_time() +
                                     link.transfer_time(ef.blob().size() * 8) +
                                     gpu_model.kernel_time(stats);
      gpu_ms += gpu_time.ms();
      (void)ledger;
    }
    cpu_ms /= reps;
    gpu_ms /= reps;
    std::printf("%-10llu %14.3f %14.3f %9.1fx\n",
                static_cast<unsigned long long>(n), cpu_ms, gpu_ms,
                cpu_ms / gpu_ms);
  }
  return 0;
}
