// Figure 12 — decompression speed: CPU PForDelta (sequential decode of the
// whole list) vs Griffin-GPU Para-EF, grouped by list size 1K..10M. The
// paper reports speedups below 2 for short lists rising to ~29.6x at 10M:
// long lists saturate the GPU and amortize transfer/launch overheads. Times
// are simulated (sim::HardwareSpec paper testbed); the GPU column includes
// one device allocation, the payload transfer, and the kernel launch per
// list — the costs §2.3 says dominate until lists grow long.
//
// A second table ablates the CPU's vector unit per codec (DESIGN.md §13):
// the same list decodes under the scalar baseline, the testbed's SSE4 unit
// and the modern AVX2 profile. Outputs are bit-identical across presets;
// only the charged time moves, and the PFor/EF speedups should land inside
// Lemire-Boytsov-Kurz's measured 4-8x full-decode range (EXPERIMENTS.md
// "Calibration").
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "cpu/decode.h"
#include "gpu/ef_decode.h"
#include "util/rng.h"

using namespace griffin;

namespace {

double decode_ms(const codec::BlockCompressedList& list,
                 const sim::CpuSpec& spec) {
  sim::CpuCostAccumulator acc(spec);
  std::vector<index::DocId> out;
  cpu::decode_all(list, out, acc);
  return acc.time().ms();
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 12: Decompression Speed Comparison (CPU PFor vs Para-EF)",
      "speedup <2 at 1K-10K rising to ~29.6x at 10M");

  const sim::HardwareSpec hw;
  const sim::GpuCostModel gpu_model(hw.gpu);
  const pcie::Link link(hw.pcie);
  util::Xoshiro256 rng(123);

  std::printf("%-10s %14s %14s %10s\n", "list size", "CPU PFor (ms)",
              "GPU ParaEF(ms)", "speedup");

  bench::Json rows = bench::Json::array();
  std::vector<std::uint64_t> sizes{1'000, 10'000, 100'000, 1'000'000,
                                   10'000'000};
  if (bench::fast_mode()) sizes.pop_back();
  for (const std::uint64_t n : sizes) {
    const int reps = n <= 100'000 ? 3 : 1;
    double cpu_ms = 0.0, gpu_ms = 0.0;
    for (int r = 0; r < reps; ++r) {
      // Density 1/32 — the typical mid-frequency web term.
      const auto universe = static_cast<index::DocId>(
          std::min<std::uint64_t>(n * 32ull, 0xFFFFFFF0ull));
      const auto docs = workload::make_uniform_list(n, universe, rng);

      // CPU: PForDelta full decompression.
      const auto pf =
          codec::BlockCompressedList::build(docs, codec::Scheme::kPForDelta);
      sim::CpuCostAccumulator acc(hw.cpu);
      std::vector<index::DocId> out;
      cpu::decode_all(pf, out, acc);
      cpu_ms += acc.time().ms();

      // GPU: Para-EF. Payload transfer + decode kernel.
      const auto ef =
          codec::BlockCompressedList::build(docs, codec::Scheme::kEliasFano);
      simt::Device dev(hw.gpu, hw.pcie.device_mem_bytes);
      pcie::TransferLedger ledger;
      gpu::DeviceList dlist = gpu::upload_list(dev, ef, link, ledger);
      auto dout = dev.alloc<index::DocId>(ef.size());
      const auto stats =
          gpu::ef_decode_range(dev, dlist, 0, dlist.num_blocks(), dout);
      const sim::Duration gpu_time = link.alloc_time() +
                                     link.transfer_time(ef.blob().size() * 8) +
                                     gpu_model.kernel_time(stats);
      gpu_ms += gpu_time.ms();
      (void)ledger;
    }
    cpu_ms /= reps;
    gpu_ms /= reps;
    std::printf("%-10llu %14.3f %14.3f %9.1fx\n",
                static_cast<unsigned long long>(n), cpu_ms, gpu_ms,
                cpu_ms / gpu_ms);
    bench::Json row = bench::Json::object();
    row["list_size"] = n;
    row["cpu_pfor_ms"] = cpu_ms;
    row["gpu_paraef_ms"] = gpu_ms;
    row["speedup"] = cpu_ms / gpu_ms;
    rows.push_back(std::move(row));
  }

  // ---- Scalar vs SIMD full-decode ablation, per codec ----
  const std::uint64_t abl_n = bench::fast_mode() ? 100'000 : 1'000'000;
  const auto abl_universe = static_cast<index::DocId>(abl_n * 32ull);
  const auto abl_docs = workload::make_uniform_list(abl_n, abl_universe, rng);
  const sim::CpuSpec scalar{};
  const sim::CpuSpec sse4 = sim::CpuSpec::sse4_testbed();
  const sim::CpuSpec avx2 = sim::CpuSpec::modern_avx2();

  std::printf("\nCPU vector-unit ablation: full decode of a %llu-element list"
              " (bit-identical output, charged time only)\n",
              static_cast<unsigned long long>(abl_n));
  std::printf("%-10s %12s %12s %12s %8s %8s\n", "codec", "scalar(ms)",
              "sse4 (ms)", "avx2 (ms)", "sse4", "avx2");
  struct CodecRow {
    const char* name;
    codec::Scheme scheme;
  };
  const std::vector<CodecRow> codecs{
      {"pfor", codec::Scheme::kPForDelta},
      {"ef", codec::Scheme::kEliasFano},
      {"vbyte", codec::Scheme::kVarByte},
      {"simple16", codec::Scheme::kSimple16},
  };
  bench::Json simd_rows = bench::Json::array();
  for (const auto& c : codecs) {
    const auto list = codec::BlockCompressedList::build(abl_docs, c.scheme);
    const double s = decode_ms(list, scalar);
    const double v4 = decode_ms(list, sse4);
    const double v8 = decode_ms(list, avx2);
    std::printf("%-10s %12.3f %12.3f %12.3f %7.2fx %7.2fx\n", c.name, s, v4,
                v8, s / v4, s / v8);
    bench::Json row = bench::Json::object();
    row["codec"] = c.name;
    row["scalar_ms"] = s;
    row["sse4_ms"] = v4;
    row["avx2_ms"] = v8;
    row["sse4_speedup"] = s / v4;
    row["avx2_speedup"] = s / v8;
    simd_rows.push_back(std::move(row));
  }

  bench::Json root = bench::Json::object();
  root["bench"] = "decompression";
  root["fast_mode"] = bench::fast_mode();
  root["rows"] = std::move(rows);
  root["simd_ablation_list_size"] = abl_n;
  root["simd_ablation"] = std::move(simd_rows);
  bench::write_bench_json("decompression", root);
  return 0;
}
