// google-benchmark wall-clock microbenchmarks of the host-side library
// primitives (encode/decode throughput across the codec zoo, adaptive
// selection, intersections). Unlike the figure benches — which report
// *simulated* time on the modeled K20 testbed — these measure this
// library's real speed on the build host. A custom reporter mirrors every
// run into BENCH_microbench_codecs.json.
#include <benchmark/benchmark.h>

#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "codec/block_codec.h"
#include "codec/codec.h"
#include "cpu/intersect.h"
#include "util/rng.h"
#include "workload/corpus.h"

using namespace griffin;

namespace {

std::vector<codec::DocId> docs_for(std::uint64_t n) {
  util::Xoshiro256 rng(n);
  return workload::make_uniform_list(
      n, static_cast<codec::DocId>(n * 32), rng);
}

void encode_bench(benchmark::State& state, codec::Scheme scheme) {
  const auto docs = docs_for(state.range(0));
  for (auto _ : state) {
    auto list = codec::BlockCompressedList::build(docs, scheme);
    benchmark::DoNotOptimize(list);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void decode_bench(benchmark::State& state, codec::Scheme scheme) {
  const auto docs = docs_for(state.range(0));
  const auto list = codec::BlockCompressedList::build(docs, scheme);
  std::vector<codec::DocId> out;
  for (auto _ : state) {
    list.decode_all(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_EncodePFor(benchmark::State& s) {
  encode_bench(s, codec::Scheme::kPForDelta);
}
void BM_EncodeEF(benchmark::State& s) {
  encode_bench(s, codec::Scheme::kEliasFano);
}
void BM_EncodeBP128(benchmark::State& s) {
  encode_bench(s, codec::Scheme::kBitPack128);
}
void BM_EncodeRePair(benchmark::State& s) {
  encode_bench(s, codec::Scheme::kRePair);
}
void BM_DecodePFor(benchmark::State& s) {
  decode_bench(s, codec::Scheme::kPForDelta);
}
void BM_DecodeEF(benchmark::State& s) {
  decode_bench(s, codec::Scheme::kEliasFano);
}
void BM_DecodeBP128(benchmark::State& s) {
  decode_bench(s, codec::Scheme::kBitPack128);
}
void BM_DecodeRePair(benchmark::State& s) {
  decode_bench(s, codec::Scheme::kRePair);
}

void BM_SelectScheme(benchmark::State& state) {
  const auto docs = docs_for(state.range(0));
  for (auto _ : state) {
    const codec::Scheme s = codec::select_scheme(docs);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_MergeIntersect(benchmark::State& state) {
  util::Xoshiro256 rng(5);
  const auto pair = workload::make_pair_with_ratio(
      state.range(0), 4.0, static_cast<codec::DocId>(state.range(0) * 16),
      0.4, rng);
  sim::CpuSpec spec;
  std::vector<codec::DocId> out;
  for (auto _ : state) {
    sim::CpuCostAccumulator acc(spec);
    cpu::merge_intersect(std::span<const codec::DocId>(pair.shorter),
                         std::span<const codec::DocId>(pair.longer), out, acc);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          (pair.shorter.size() + pair.longer.size()));
}

void BM_SkipIntersect(benchmark::State& state) {
  util::Xoshiro256 rng(6);
  const auto pair = workload::make_pair_with_ratio(
      state.range(0), 256.0, static_cast<codec::DocId>(state.range(0) * 8),
      0.4, rng);
  const auto longer = codec::BlockCompressedList::build(
      pair.longer, codec::Scheme::kEliasFano);
  sim::CpuSpec spec;
  std::vector<codec::DocId> out;
  for (auto _ : state) {
    sim::CpuCostAccumulator acc(spec);
    cpu::skip_intersect(pair.shorter, longer, out, acc);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * pair.shorter.size());
}

BENCHMARK(BM_EncodePFor)->Arg(1 << 14)->Arg(1 << 18);
BENCHMARK(BM_EncodeEF)->Arg(1 << 14)->Arg(1 << 18);
BENCHMARK(BM_EncodeBP128)->Arg(1 << 14)->Arg(1 << 18);
// Re-Pair's greedy pairing is the one super-linear encoder; keep its sizes
// below the bit-packers' so the bench stays a microbench.
BENCHMARK(BM_EncodeRePair)->Arg(1 << 12)->Arg(1 << 14);
BENCHMARK(BM_DecodePFor)->Arg(1 << 14)->Arg(1 << 18);
BENCHMARK(BM_DecodeEF)->Arg(1 << 14)->Arg(1 << 18);
BENCHMARK(BM_DecodeBP128)->Arg(1 << 14)->Arg(1 << 18);
BENCHMARK(BM_DecodeRePair)->Arg(1 << 12)->Arg(1 << 14);
BENCHMARK(BM_SelectScheme)->Arg(1 << 14)->Arg(1 << 18);
BENCHMARK(BM_MergeIntersect)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(BM_SkipIntersect)->Arg(1 << 18)->Arg(1 << 21);

/// Console output as usual, plus every run mirrored into a JSON array so
/// write_bench_json can emit the BENCH_microbench_codecs.json artifact.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      auto row = bench::Json::object();
      row["name"] = r.benchmark_name();
      row["real_time_ns"] = r.GetAdjustedRealTime();
      row["cpu_time_ns"] = r.GetAdjustedCPUTime();
      const auto it = r.counters.find("items_per_second");
      if (it != r.counters.end()) {
        row["items_per_second"] = static_cast<double>(it->second);
      }
      rows_.push_back(std::move(row));
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }

  bench::Json take_rows() { return std::move(rows_); }

 private:
  bench::Json rows_ = bench::Json::array();
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  auto root = bench::Json::object();
  root["bench"] = "microbench_codecs";
  root["runs"] = reporter.take_rows();
  bench::write_bench_json("microbench_codecs", root);
  return 0;
}
