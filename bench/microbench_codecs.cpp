// google-benchmark wall-clock microbenchmarks of the host-side library
// primitives (encode/decode throughput, intersections, MergePath search).
// Unlike the figure benches — which report *simulated* time on the modeled
// K20 testbed — these measure this library's real speed on the build host.
#include <benchmark/benchmark.h>

#include "codec/block_codec.h"
#include "cpu/intersect.h"
#include "util/rng.h"
#include "workload/corpus.h"

using namespace griffin;

namespace {

std::vector<codec::DocId> docs_for(std::uint64_t n) {
  util::Xoshiro256 rng(n);
  return workload::make_uniform_list(
      n, static_cast<codec::DocId>(n * 32), rng);
}

void BM_EncodePFor(benchmark::State& state) {
  const auto docs = docs_for(state.range(0));
  for (auto _ : state) {
    auto list = codec::BlockCompressedList::build(
        docs, codec::Scheme::kPForDelta);
    benchmark::DoNotOptimize(list);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_EncodeEF(benchmark::State& state) {
  const auto docs = docs_for(state.range(0));
  for (auto _ : state) {
    auto list = codec::BlockCompressedList::build(
        docs, codec::Scheme::kEliasFano);
    benchmark::DoNotOptimize(list);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_DecodePFor(benchmark::State& state) {
  const auto docs = docs_for(state.range(0));
  const auto list = codec::BlockCompressedList::build(
      docs, codec::Scheme::kPForDelta);
  std::vector<codec::DocId> out;
  for (auto _ : state) {
    list.decode_all(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_DecodeEF(benchmark::State& state) {
  const auto docs = docs_for(state.range(0));
  const auto list = codec::BlockCompressedList::build(
      docs, codec::Scheme::kEliasFano);
  std::vector<codec::DocId> out;
  for (auto _ : state) {
    list.decode_all(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_MergeIntersect(benchmark::State& state) {
  util::Xoshiro256 rng(5);
  const auto pair = workload::make_pair_with_ratio(
      state.range(0), 4.0, static_cast<codec::DocId>(state.range(0) * 16),
      0.4, rng);
  sim::CpuSpec spec;
  std::vector<codec::DocId> out;
  for (auto _ : state) {
    sim::CpuCostAccumulator acc(spec);
    cpu::merge_intersect(std::span<const codec::DocId>(pair.shorter),
                         std::span<const codec::DocId>(pair.longer), out, acc);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          (pair.shorter.size() + pair.longer.size()));
}

void BM_SkipIntersect(benchmark::State& state) {
  util::Xoshiro256 rng(6);
  const auto pair = workload::make_pair_with_ratio(
      state.range(0), 256.0, static_cast<codec::DocId>(state.range(0) * 8),
      0.4, rng);
  const auto longer = codec::BlockCompressedList::build(
      pair.longer, codec::Scheme::kEliasFano);
  sim::CpuSpec spec;
  std::vector<codec::DocId> out;
  for (auto _ : state) {
    sim::CpuCostAccumulator acc(spec);
    cpu::skip_intersect(pair.shorter, longer, out, acc);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * pair.shorter.size());
}

BENCHMARK(BM_EncodePFor)->Arg(1 << 14)->Arg(1 << 18);
BENCHMARK(BM_EncodeEF)->Arg(1 << 14)->Arg(1 << 18);
BENCHMARK(BM_DecodePFor)->Arg(1 << 14)->Arg(1 << 18);
BENCHMARK(BM_DecodeEF)->Arg(1 << 14)->Arg(1 << 18);
BENCHMARK(BM_MergeIntersect)->Arg(1 << 16)->Arg(1 << 20);
BENCHMARK(BM_SkipIntersect)->Arg(1 << 18)->Arg(1 << 21);

}  // namespace

BENCHMARK_MAIN();
