// Extension bench — fault tolerance and degraded execution (DESIGN.md §11).
// The cluster broker replays one seeded query stream while replica crashes
// (and engine-level GPU/PCIe faults) are injected at a swept rate, crossed
// with the per-shard deadline and the per-replica circuit breaker:
//
//   - fault rate x {no deadline, tight, loose} x {breaker off, on};
//   - reported per cell: p50/p99 response, mean/min coverage, the degraded
//     fraction, and the full fault-counter block.
//
// The zero-rate row doubles as the golden-parity check: with every site
// disarmed the broker runs the exact pre-fault code path, so that row must
// be bit-identical across builds that only add fault machinery. Everything
// is seeded; two runs print identical tables and write identical JSON (the
// CI determinism gate diffs them).
#include <algorithm>
#include <cstdio>
#include <span>

#include "bench_common.h"
#include "cluster/broker.h"
#include "core/hybrid_engine.h"
#include "tenancy/device_manager.h"

using namespace griffin;

namespace {

const char* onoff(bool b) { return b ? "on" : "off"; }

struct DeadlineMode {
  const char* name;
  double scale;  ///< multiple of the fault-free p99 shard critical; 0 = off
};

}  // namespace

int main() {
  workload::CorpusConfig cfg = bench::paper_corpus_config();
  cfg.num_docs = bench::fast_mode() ? 200'000 : 1'000'000;
  cfg.num_terms = bench::fast_mode() ? 300 : 1'500;
  std::fprintf(stderr, "[fault_tolerance] building/loading corpus...\n");
  const auto idx = bench::cached_corpus(cfg);

  auto qcfg = bench::paper_query_config(1, cfg);
  qcfg.num_queries = static_cast<std::uint32_t>(bench::scaled(400));
  qcfg.seed = 606;
  const auto stream = workload::generate_query_log(qcfg, cfg.num_terms);

  // Offered load calibrated to the single-node service rate (as in
  // bench/cluster_scaling) so queueing neither vanishes nor explodes.
  core::HybridEngine probe(idx);
  sim::Duration probe_total;
  const std::size_t probe_n = std::min<std::size_t>(stream.size(), 50);
  for (std::size_t i = 0; i < probe_n; ++i) {
    probe_total += probe.execute(stream[i]).metrics.total;
  }
  const double mean_service_s =
      probe_total.seconds() / static_cast<double>(probe_n);
  const double qps = 0.5 / mean_service_s;

  // Crash windows sized to the stream's simulated horizon: ~50 windows per
  // replica per run, so the swept rate translates into actual churn (a
  // fixed 50 ms window would be one Bernoulli per replica on a short run).
  const double horizon_ms =
      1000.0 * static_cast<double>(stream.size()) / qps;
  const double window_ms = std::max(0.2, horizon_ms / 50.0);

  const auto make_config = [&](double rate, sim::Duration deadline,
                               bool breaker) {
    cluster::ClusterConfig ccfg;
    ccfg.num_shards = 4;
    ccfg.replicas_per_shard = 2;
    ccfg.arrival_qps = qps;
    ccfg.seed = 2028;
    ccfg.faults.crash.probability = rate;
    ccfg.faults.crash_window_ms = window_ms;
    // Engine-level faults ride the same rate, scaled down: device faults,
    // DMA errors and memory pressure are rarer than whole-replica trouble
    // in practice.
    ccfg.faults.gpu.probability = rate * 0.2;
    ccfg.faults.pcie.probability = rate * 0.2;
    ccfg.faults.oom.probability = rate * 0.2;
    ccfg.faults.seed = 42;
    ccfg.shard_deadline = deadline;
    ccfg.breaker.enabled = breaker;
    ccfg.breaker.failure_threshold = 3;
    ccfg.breaker.open_duration = sim::Duration::from_ms(100.0);
    return ccfg;
  };

  // Fault-free baseline: calibrates the deadline scales and pins the
  // golden-parity row (rate 0 must match the pre-fault broker exactly).
  cluster::ClusterBroker baseline(idx, make_config(0.0, {}, false));
  const auto base = baseline.run(stream);
  const double crit_p99_ms = base.shard_critical_ms.percentile(99);

  bench::print_header(
      "Extension: fault tolerance — injected faults, deadlines, breakers",
      "robustness under the paper's future-work serving scenario (heavy "
      "loads, multiple users)");
  std::printf(
      "corpus: %u docs, %u terms; stream: %zu queries, offered load %.0f "
      "qps\ncluster: 4 shards x 2 replicas; crash windows of %.2f ms at the "
      "swept rate,\nengine GPU/PCIe faults at 0.2x that rate; deadlines "
      "scale the fault-free\np99 shard critical path (%.3f ms)\n\n",
      cfg.num_docs, cfg.num_terms, stream.size(), qps, window_ms,
      crit_p99_ms);
  std::printf("%-6s %-9s %-7s %9s %9s %9s %7s %8s %8s %8s %7s\n", "rate",
              "deadline", "breaker", "p50(ms)", "p99(ms)", "cover", "degr%",
              "failovr", "dropped", "shortckt", "misses");

  const DeadlineMode deadlines[] = {
      {"none", 0.0}, {"tight", 1.0}, {"loose", 3.0}};

  bench::Json rows = bench::Json::array();
  for (const double rate : {0.0, 0.02, 0.05, 0.10}) {
    for (const DeadlineMode& dl : deadlines) {
      for (const bool breaker : {false, true}) {
        const sim::Duration deadline =
            dl.scale > 0.0 ? sim::Duration::from_ms(crit_p99_ms * dl.scale)
                           : sim::Duration{};
        cluster::ClusterBroker broker(idx,
                                      make_config(rate, deadline, breaker));
        const auto res = broker.run(stream);

        const double degraded_frac =
            res.gathered_queries == 0
                ? 0.0
                : double(res.faults.degraded_queries) /
                      double(res.gathered_queries);

        std::printf(
            "%-6.2f %-9s %-7s %9.3f %9.3f %8.1f%% %6.1f%% %8llu %8llu "
            "%8llu %7llu\n",
            rate, dl.name, onoff(breaker), res.response_ms.percentile(50),
            res.response_ms.percentile(99), 100.0 * res.mean_coverage(),
            100.0 * degraded_frac,
            static_cast<unsigned long long>(res.faults.failovers),
            static_cast<unsigned long long>(res.faults.shards_dropped),
            static_cast<unsigned long long>(
                res.faults.breaker_short_circuits),
            static_cast<unsigned long long>(res.faults.deadline_misses));

        bench::Json row = bench::Json::object();
        row["fault_rate"] = rate;
        row["deadline"] = dl.name;
        row["deadline_ms"] = deadline.ms();
        row["breaker"] = breaker;
        row["response_ms"] = bench::latency_json(res.response_ms);
        row["shard_critical_ms"] = bench::latency_json(res.shard_critical_ms);
        row["mean_coverage"] = res.mean_coverage();
        row["min_coverage"] = res.min_coverage;
        row["degraded_fraction"] = degraded_frac;
        row["faults"] = bench::fault_json(res.faults);
        rows.push_back(std::move(row));
      }
    }
    std::printf("\n");
  }

  // Breaker ablation under a *persistent* outage: probabilistic churn
  // rarely produces the consecutive failures that open a breaker (crashes
  // recover at the next window), so this scenario pins shard 0's primary
  // down for the whole run — every query eats crash_detect + backoff until
  // the breaker opens and short-circuits the dead replica.
  std::printf("persistent outage (shard 0 primary down for the whole run):\n");
  std::printf("%-7s %9s %9s %9s %8s %8s %9s\n", "breaker", "p50(ms)",
              "p99(ms)", "mean(ms)", "failovr", "shortckt", "backoff");
  bench::Json outage_rows = bench::Json::array();
  for (const bool breaker : {false, true}) {
    auto ccfg = make_config(0.0, {}, breaker);
    ccfg.faults.outages.push_back(
        {0, 0, sim::Duration{}, sim::Duration::from_seconds(3600)});
    cluster::ClusterBroker broker(idx, ccfg);
    const auto res = broker.run(stream);
    std::printf("%-7s %9.3f %9.3f %9.3f %8llu %8llu %8.2fms\n",
                onoff(breaker), res.response_ms.percentile(50),
                res.response_ms.percentile(99), res.response_ms.mean(),
                static_cast<unsigned long long>(res.faults.failovers),
                static_cast<unsigned long long>(
                    res.faults.breaker_short_circuits),
                res.faults.backoff_time.ms());

    bench::Json row = bench::Json::object();
    row["breaker"] = breaker;
    row["response_ms"] = bench::latency_json(res.response_ms);
    row["mean_coverage"] = res.mean_coverage();
    row["faults"] = bench::fault_json(res.faults);
    outage_rows.push_back(std::move(row));
  }
  std::printf("\n");

  // Split-execution recovery (DESIGN.md §16): every intersect splits across
  // both processors, and injected device faults kill GPU legs mid-step. The
  // CPU leg's partial survives; the lost range is redone host-side. Parity
  // against the all-CPU reference is checked inline — a bench row with
  // parity=FAIL means the recovery path corrupted a result.
  const std::size_t sub_n = std::min<std::size_t>(stream.size(), 120);
  const std::span<const core::Query> sub(stream.data(), sub_n);
  std::printf(
      "split recovery (kAlwaysSplit engine, gpu+oom faults at the swept "
      "rate):\n");
  std::printf("%-6s %9s %8s %8s %8s %8s %8s %7s\n", "rate", "mean(ms)",
              "gpufault", "legfault", "oomfault", "oomstep", "prefetch",
              "parity");
  bench::Json split_rows = bench::Json::array();
  {
    core::HybridOptions cpu_opt;
    cpu_opt.scheduler.policy = core::SchedulerPolicy::kAlwaysCpu;
    core::HybridEngine cpu_ref(idx, {}, cpu_opt);
    std::vector<core::QueryResult> want;
    want.reserve(sub_n);
    for (const auto& q : sub) want.push_back(cpu_ref.execute(q));

    for (const double rate : {0.0, 0.05, 0.10, 0.25}) {
      core::HybridOptions opt;
      opt.scheduler.policy = core::SchedulerPolicy::kAlwaysSplit;
      opt.scheduler.forced_split_alpha = 0.5;
      opt.faults.gpu.probability = rate;
      opt.faults.oom.probability = rate;
      opt.faults.seed = 4242;
      core::HybridEngine engine(idx, {}, opt);

      fault::FaultCounters f;
      sim::Duration total;
      bool parity = true;
      for (std::size_t i = 0; i < sub_n; ++i) {
        const auto res = engine.execute(sub[i]);
        f += res.metrics.faults;
        total += res.metrics.total;
        if (res.topk.size() != want[i].topk.size()) parity = false;
        for (std::size_t r = 0; parity && r < res.topk.size(); ++r) {
          parity = res.topk[r].doc == want[i].topk[r].doc &&
                   res.topk[r].score == want[i].topk[r].score;
        }
      }
      const double mean_ms = 1000.0 * total.seconds() / double(sub_n);
      std::printf("%-6.2f %9.3f %8llu %8llu %8llu %8llu %8llu %7s\n", rate,
                  mean_ms, static_cast<unsigned long long>(f.gpu_faults),
                  static_cast<unsigned long long>(f.split_leg_faults),
                  static_cast<unsigned long long>(f.oom_faults),
                  static_cast<unsigned long long>(f.oom_degraded_steps),
                  static_cast<unsigned long long>(f.prefetch_faults),
                  parity ? "ok" : "FAIL");
      bench::Json row = bench::Json::object();
      row["fault_rate"] = rate;
      row["mean_ms"] = mean_ms;
      row["parity"] = parity;
      row["faults"] = bench::fault_json(f);
      split_rows.push_back(std::move(row));
    }
  }
  std::printf("\n");

  // Fault-aware tenancy (DESIGN.md §16): the shared device runs the same
  // sub-stream under batching + concurrency with the injector armed. A
  // fault inside a fused launch degrades only the hit query; OOM pressure
  // unfuses batches or re-plans single steps.
  std::printf(
      "multi-tenant device under faults (4 lanes, batching on, gpu+oom at "
      "the swept rate):\n");
  std::printf("%-6s %9s %9s %8s %8s %8s %8s %8s\n", "rate", "p50(ms)",
              "p99(ms)", "gpufault", "oomfault", "unfused", "oomstep",
              "evicted");
  bench::Json tenancy_rows = bench::Json::array();
  for (const double rate : {0.0, 0.05, 0.10, 0.25}) {
    tenancy::TenancyOptions topt;
    topt.max_concurrency = 4;
    topt.engine.faults.gpu.probability = rate;
    topt.engine.faults.oom.probability = rate;
    topt.engine.faults.seed = 4242;
    tenancy::DeviceManager dm(idx, {}, topt);
    std::vector<tenancy::TenantQuery> load;
    load.reserve(sub_n);
    for (std::size_t i = 0; i < sub_n; ++i) {
      load.push_back({sub[i], sim::Duration::from_seconds(double(i) / qps)});
    }
    const auto results = dm.run(load);
    util::PercentileTracker resp;
    for (const auto& r : results) {
      resp.add((r.finish - r.arrival).ms());
    }
    const auto& f = dm.run_faults();
    std::printf("%-6.2f %9.3f %9.3f %8llu %8llu %8llu %8llu %8llu\n", rate,
                resp.percentile(50), resp.percentile(99),
                static_cast<unsigned long long>(f.gpu_faults),
                static_cast<unsigned long long>(f.oom_faults),
                static_cast<unsigned long long>(f.oom_unfused),
                static_cast<unsigned long long>(f.oom_degraded_steps),
                static_cast<unsigned long long>(f.oom_evictions));
    bench::Json row = bench::Json::object();
    row["fault_rate"] = rate;
    row["response_ms"] = bench::latency_json(resp);
    row["batch_groups"] = dm.batch_groups();
    row["faults"] = bench::fault_json(f);
    tenancy_rows.push_back(std::move(row));
  }
  std::printf("\n");

  bench::Json root = bench::Json::object();
  root["bench"] = "fault_tolerance";
  root["fast_mode"] = bench::fast_mode();
  root["num_docs"] = cfg.num_docs;
  root["num_terms"] = cfg.num_terms;
  root["offered_qps"] = qps;
  root["deadline_base_ms"] = crit_p99_ms;
  root["baseline_response_ms"] = bench::latency_json(base.response_ms);
  root["rows"] = std::move(rows);
  root["persistent_outage"] = std::move(outage_rows);
  root["split_recovery"] = std::move(split_rows);
  root["tenancy_under_faults"] = std::move(tenancy_rows);
  bench::write_bench_json("fault_tolerance", root);

  std::printf(
      "(the zero-rate rows reproduce the fault-free broker exactly — the "
      "golden-parity\ninvariant. as the rate climbs, 'none' rows keep "
      "coverage at 100%% by paying the\ntail in failover latency; deadline "
      "rows trade coverage for a bounded p99; the\nbreaker trims the "
      "crash-detect/backoff tax once a replica is persistently down.)\n");
  return 0;
}
