// Ablation — the scheduler's crossover threshold. The paper argues the
// threshold should equal the compression block size (128): above it, the
// short list has fewer elements than the long list has blocks, so skippable
// blocks must exist (Figure 9). This bench sweeps the threshold on a fixed
// query log, and then shows the optimal threshold tracking the block size.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/hybrid_engine.h"
#include "util/stats.h"

using namespace griffin;

namespace {

double mean_latency_ms(const index::InvertedIndex& idx,
                       const std::vector<core::Query>& log,
                       double threshold) {
  core::HybridOptions opt;
  opt.scheduler.ratio_threshold = threshold;
  core::HybridEngine engine(idx, {}, opt);
  util::SummaryStats ms;
  for (const auto& q : log) ms.add(engine.execute(q).metrics.total.ms());
  return ms.mean();
}

}  // namespace

int main() {
  auto cfg = bench::paper_corpus_config();
  // A moderate corpus keeps the sweep affordable; the threshold effect only
  // needs ratios spanning the candidate thresholds.
  cfg.num_docs = bench::fast_mode() ? 500'000 : 2'000'000;
  cfg.num_terms = bench::fast_mode() ? 300 : 2'000;
  std::fprintf(stderr, "[ablation_threshold] building/loading corpus...\n");
  const auto idx = bench::cached_corpus(cfg);

  auto qcfg = bench::paper_query_config(60, cfg);
  const auto log = workload::generate_query_log(qcfg, cfg.num_terms);

  bench::print_header(
      "Ablation: scheduler crossover threshold sweep",
      "paper picks 128 = block size via Figure 8 + the Figure 9 argument");

  std::printf("%-12s %16s\n", "threshold", "mean latency(ms)");
  double best = 1e30;
  double best_thr = 0;
  for (const double thr : {8.0, 32.0, 64.0, 128.0, 256.0, 1024.0, 1e18}) {
    const double ms = mean_latency_ms(idx, log, thr);
    if (ms < best) {
      best = ms;
      best_thr = thr;
    }
    if (thr >= 1e18) {
      std::printf("%-12s %16.3f   (= always GPU)\n", "inf", ms);
    } else {
      std::printf("%-12.0f %16.3f\n", thr, ms);
    }
  }
  std::printf("(threshold 0 would be the CPU-only engine)\n");
  std::printf("\nBest swept threshold: %.0f (paper's choice: 128)\n", best_thr);
  return 0;
}
