// Chaos soak harness (DESIGN.md §16). One seeded query stream replayed
// through three execution modes — the sequential hybrid engine, the
// every-step-split engine, and the batched multi-tenant device — crossed
// with six fault schedules (disarmed, armed-but-silent, gpu, pcie, oom,
// everything at once) over an adaptive-codec corpus, so every recovery path
// in the unified fault domain runs against every codec the zoo picked.
//
// Unlike the other benches this one *checks* as it measures. Invariants,
// each counted as a violation when broken (nonzero exit):
//
//   1. golden parity — every cell's top-k digest equals the all-CPU
//      reference's: faults perturb timing and counters, never bits;
//   2. disarmed == silent — an armed injector whose faults never fire is
//      bit-identical to no injector at all, down to total picoseconds;
//   3. determinism — every cell, rebuilt and rerun, reproduces its digest,
//      fault counters, and total time exactly;
//   4. stage identity — decode + intersect + transfer + rank ==
//      total + overlap.saved per query, faults included;
//   5. fault coverage — armed schedules actually fire their sites (a chaos
//      run that injects nothing proves nothing);
//   6. conservation — prefetch_used + prefetch_dropped == prefetch_issued,
//      and under admission control completed + shed == offered.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/hybrid_engine.h"
#include "tenancy/device_manager.h"

using namespace griffin;

namespace {

int violations = 0;

void check(bool ok, const char* what, const std::string& where) {
  if (!ok) {
    ++violations;
    std::fprintf(stderr, "[chaos] VIOLATION: %s (%s)\n", what, where.c_str());
  }
}

/// Order-sensitive digest of every query's top-k: doc ids and raw float
/// score bits. Two runs agree iff their results are bit-identical.
struct Digest {
  std::uint64_t h = 1469598103934665603ULL;
  void mix(std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  }
  void add(const core::QueryResult& res) {
    mix(res.topk.size());
    for (const auto& d : res.topk) {
      mix(d.doc);
      std::uint32_t bits = 0;
      std::memcpy(&bits, &d.score, sizeof(bits));
      mix(bits);
    }
    mix(res.metrics.result_count);
  }
};

enum class Mode { kSeq, kSplit, kTenancy };
constexpr Mode kModes[] = {Mode::kSeq, Mode::kSplit, Mode::kTenancy};

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kSeq: return "hybrid";
    case Mode::kSplit: return "split";
    case Mode::kTenancy: return "tenancy";
  }
  return "?";
}

struct Schedule {
  const char* name;
  fault::FaultConfig cfg;
  bool expect_gpu = false;
  bool expect_pcie = false;
  bool expect_oom = false;
};

std::vector<Schedule> schedules() {
  std::vector<Schedule> out;
  out.push_back({"disarmed", {}, false, false, false});
  Schedule silent{"silent", {}, false, false, false};
  // Armed (the injector is consulted everywhere) but pointed at a query id
  // the stream never reaches: every decision is false.
  silent.cfg.gpu.triggers.push_back({1u << 30, 0});
  silent.cfg.pcie.triggers.push_back({1u << 30, 0});
  silent.cfg.oom.triggers.push_back({1u << 30, 0});
  out.push_back(silent);
  Schedule gpu{"gpu", {}, true, false, false};
  gpu.cfg.gpu.probability = 0.12;
  gpu.cfg.seed = 11;
  out.push_back(gpu);
  Schedule pcie{"pcie", {}, false, true, false};
  pcie.cfg.pcie.probability = 0.05;
  pcie.cfg.seed = 12;
  out.push_back(pcie);
  Schedule oom{"oom", {}, false, false, true};
  oom.cfg.oom.probability = 0.12;
  oom.cfg.seed = 13;
  out.push_back(oom);
  Schedule all{"all", {}, true, true, true};
  all.cfg.gpu.probability = 0.10;
  all.cfg.pcie.probability = 0.04;
  all.cfg.oom.probability = 0.10;
  all.cfg.seed = 14;
  out.push_back(all);
  return out;
}

struct CellResult {
  std::uint64_t digest = 0;
  sim::Duration total;  ///< sum of per-query totals (tenancy: makespan)
  fault::FaultCounters faults;
  core::OverlapCounters overlap;
  bool stage_identity = true;
};

CellResult run_cell(Mode mode, const index::InvertedIndex& idx,
                    const std::vector<core::Query>& queries,
                    const fault::FaultConfig& faults) {
  CellResult out;
  Digest dig;
  const auto note = [&](const core::QueryMetrics& m) {
    out.faults += m.faults;
    out.overlap += m.overlap;
    if (m.decode + m.intersect + m.transfer + m.rank !=
        m.total + m.overlap.saved) {
      out.stage_identity = false;
    }
  };

  if (mode == Mode::kTenancy) {
    tenancy::TenancyOptions opt;
    opt.max_concurrency = 4;
    opt.engine.faults = faults;
    tenancy::DeviceManager dm(idx, {}, opt);
    std::vector<tenancy::TenantQuery> load;
    load.reserve(queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      load.push_back({queries[i], sim::Duration::from_us(40.0 * double(i))});
    }
    const auto results = dm.run(load);
    for (const auto& r : results) {
      dig.add(r.result);
      note(r.result.metrics);
      out.total = sim::max(out.total, r.finish);
    }
    // The engine-level rollup equals the per-query sum by construction;
    // trust but verify (it is the surface the service sim reads).
    if (dm.run_faults().gpu_faults != out.faults.gpu_faults ||
        dm.run_faults().oom_faults != out.faults.oom_faults) {
      out.stage_identity = false;
    }
  } else {
    core::HybridOptions opt;
    if (mode == Mode::kSplit) {
      opt.scheduler.policy = core::SchedulerPolicy::kAlwaysSplit;
      opt.scheduler.forced_split_alpha = 0.5;
    }
    opt.faults = faults;
    core::HybridEngine engine(idx, {}, opt);
    for (const auto& q : queries) {
      const auto res = engine.execute(q);
      dig.add(res);
      note(res.metrics);
      out.total += res.metrics.total;
    }
  }
  out.digest = dig.h;
  return out;
}

}  // namespace

int main() {
  workload::CorpusConfig cfg = bench::paper_corpus_config();
  cfg.num_docs = bench::fast_mode() ? 120'000 : 400'000;
  cfg.num_terms = 300;
  cfg.adaptive = true;  // per-list codec selection: the whole zoo in play
  std::fprintf(stderr, "[chaos] building/loading corpus...\n");
  const auto idx = bench::cached_corpus(cfg);

  auto qcfg = bench::paper_query_config(1, cfg);
  qcfg.num_queries = static_cast<std::uint32_t>(bench::scaled(150));
  qcfg.seed = 909;
  const auto queries = workload::generate_query_log(qcfg, cfg.num_terms);

  bench::print_header(
      "Extension: chaos soak — all fault sites x execution modes",
      "robustness: faults perturb timing and counters, never result bits");
  std::printf(
      "corpus: %u docs, %u terms (adaptive codecs); stream: %zu queries\n"
      "modes: hybrid (ratio policy), split (kAlwaysSplit a=0.5), tenancy "
      "(4 lanes,\nbatching on); schedules: disarmed, silent, gpu, pcie, oom, "
      "all\n\n",
      cfg.num_docs, cfg.num_terms, queries.size());

  // The golden reference: the all-CPU engine, no injector. Every cell in
  // the matrix must reproduce this digest bit for bit.
  core::HybridOptions cpu_opt;
  cpu_opt.scheduler.policy = core::SchedulerPolicy::kAlwaysCpu;
  core::HybridEngine cpu_ref(idx, {}, cpu_opt);
  Digest ref;
  for (const auto& q : queries) ref.add(cpu_ref.execute(q));

  std::printf("%-8s %-9s %10s %8s %8s %8s %8s %8s %6s\n", "mode", "faults",
              "total(ms)", "gpuflt", "pcie", "oomflt", "legflt", "oomstep",
              "parity");

  const auto scheds = schedules();
  bench::Json cells = bench::Json::array();
  for (const Mode mode : kModes) {
    CellResult disarmed_cell;
    for (const auto& s : scheds) {
      const std::string where =
          std::string(mode_name(mode)) + "/" + s.name;
      const CellResult a = run_cell(mode, idx, queries, s.cfg);
      const CellResult b = run_cell(mode, idx, queries, s.cfg);

      // 1. golden parity with the all-CPU reference.
      check(a.digest == ref.h, "top-k digest != CPU reference", where);
      // 3. determinism: rebuild + rerun reproduces everything.
      check(a.digest == b.digest, "rerun digest differs", where);
      check(a.total == b.total, "rerun total time differs", where);
      check(a.faults.gpu_faults == b.faults.gpu_faults &&
                a.faults.pcie_errors == b.faults.pcie_errors &&
                a.faults.oom_faults == b.faults.oom_faults &&
                a.faults.oom_recovery == b.faults.oom_recovery &&
                a.faults.gpu_wasted == b.faults.gpu_wasted,
            "rerun fault counters differ", where);
      // 4. per-query stage identity held everywhere.
      check(a.stage_identity, "stage identity broke", where);
      // 6. prefetch conservation.
      check(a.overlap.prefetch_used + a.overlap.prefetch_dropped ==
                a.overlap.prefetch_issued,
            "prefetch counters not conserved", where);
      // 5. coverage: armed schedules fire; disarmed/silent stay silent.
      if (s.expect_gpu) {
        check(a.faults.gpu_faults > 0, "gpu site never fired", where);
      }
      if (s.expect_pcie) {
        check(a.faults.pcie_errors > 0, "pcie site never fired", where);
      }
      if (s.expect_oom) {
        check(a.faults.oom_faults > 0, "oom site never fired", where);
      }
      if (!s.expect_gpu && !s.expect_pcie && !s.expect_oom) {
        check(!a.faults.any(), "disarmed/silent schedule injected", where);
      }
      // 2. armed-but-silent == disarmed to the picosecond.
      if (std::strcmp(s.name, "disarmed") == 0) {
        disarmed_cell = a;
      } else if (std::strcmp(s.name, "silent") == 0) {
        check(a.digest == disarmed_cell.digest,
              "silent digest != disarmed digest", where);
        check(a.total == disarmed_cell.total,
              "silent total != disarmed total", where);
      }

      std::printf(
          "%-8s %-9s %10.3f %8llu %8llu %8llu %8llu %8llu %6s\n",
          mode_name(mode), s.name, a.total.ms(),
          static_cast<unsigned long long>(a.faults.gpu_faults),
          static_cast<unsigned long long>(a.faults.pcie_errors),
          static_cast<unsigned long long>(a.faults.oom_faults),
          static_cast<unsigned long long>(a.faults.split_leg_faults),
          static_cast<unsigned long long>(a.faults.oom_degraded_steps),
          a.digest == ref.h ? "ok" : "FAIL");

      bench::Json cell = bench::Json::object();
      cell["mode"] = mode_name(mode);
      cell["schedule"] = s.name;
      cell["digest"] = a.digest;
      cell["total_ms"] = a.total.ms();
      cell["parity"] = a.digest == ref.h;
      cell["deterministic"] = a.digest == b.digest && a.total == b.total;
      cell["stage_identity"] = a.stage_identity;
      cell["faults"] = bench::fault_json(a.faults);
      cells.push_back(std::move(cell));
    }
    std::printf("\n");
  }

  // 6b. shed conservation under admission control, injector armed: every
  // offered query is either answered bit-identically or counted shed.
  {
    tenancy::TenancyOptions opt;
    opt.max_concurrency = 4;
    opt.engine.faults.gpu.probability = 0.10;
    opt.engine.faults.oom.probability = 0.10;
    opt.engine.faults.seed = 21;
    tenancy::DeviceManager dm(idx, {}, opt);
    std::vector<tenancy::TenantQuery> load;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      load.push_back({queries[i], sim::Duration::from_us(10.0 * double(i))});
    }
    const auto results = dm.run(load, /*max_in_system=*/8);
    std::uint64_t shed = 0;
    std::uint64_t answered = 0;
    for (const auto& r : results) {
      if (r.shed) {
        ++shed;
        check(r.result.topk.empty(), "shed query has results",
              "tenancy/shed");
      } else {
        ++answered;
      }
    }
    check(shed + answered == queries.size(), "shed + answered != offered",
          "tenancy/shed");
    check(shed == dm.run_faults().shed_queries,
          "shed rollup != observed sheds", "tenancy/shed");
    check(shed > 0, "admission control never shed", "tenancy/shed");
    std::printf(
        "admission control, armed: offered %zu = answered %llu + shed "
        "%llu\n\n",
        queries.size(), static_cast<unsigned long long>(answered),
        static_cast<unsigned long long>(shed));
  }

  bench::Json root = bench::Json::object();
  root["bench"] = "chaos";
  root["fast_mode"] = bench::fast_mode();
  root["num_docs"] = cfg.num_docs;
  root["num_terms"] = cfg.num_terms;
  root["num_queries"] = static_cast<std::uint64_t>(queries.size());
  root["reference_digest"] = ref.h;
  root["cells"] = std::move(cells);
  root["violations"] = static_cast<std::uint64_t>(violations);
  bench::write_bench_json("chaos", root);

  if (violations > 0) {
    std::fprintf(stderr, "[chaos] %d invariant violation(s)\n", violations);
    return 1;
  }
  std::printf(
      "(every cell reproduced the all-CPU digest, reran identically, and "
      "kept the\nstage identity — the fault domain degrades timing, never "
      "answers.)\n");
  return 0;
}
