// Ablation — PForDelta ported to the GPU (the negative result of §2.3 and
// §3.1.1): the exception patch chain serializes one lane while the whole
// block stalls, and chasing compression ratio by shrinking the slot width b
// multiplies the exceptions. EF gives Griffin both the ratio and the
// parallel decode at once.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "gpu/ef_decode.h"
#include "gpu/pfor_decode.h"
#include "util/rng.h"

using namespace griffin;

int main() {
  bench::print_header(
      "Ablation: PForDelta on the GPU vs Para-EF",
      "porting PFor to GPU is slow (serial exception chain); shrinking b for "
      "ratio makes it worse");

  const sim::HardwareSpec hw;
  const sim::GpuCostModel model(hw.gpu);
  const pcie::Link link(hw.pcie);
  util::Xoshiro256 rng(17);

  const std::uint64_t n = bench::scaled(1'000'000);
  const auto docs = workload::make_uniform_list(
      n, static_cast<index::DocId>(n * 32), rng);

  std::printf("%-18s %14s %14s %16s\n", "codec", "bits/posting",
              "decode (ms)", "exceptions/blk");

  auto run_pfor = [&](std::uint8_t forced_b, const char* label) {
    const auto list = codec::BlockCompressedList::build(
        docs, codec::Scheme::kPForDelta, 128, forced_b);
    simt::Device dev(hw.gpu, hw.pcie.device_mem_bytes);
    pcie::TransferLedger ledger;
    gpu::DeviceList dl = gpu::upload_list(dev, list, link, ledger);
    auto out = dev.alloc<index::DocId>(list.size());
    const auto stats =
        gpu::pfor_decode_range(dev, dl, 0, dl.num_blocks(), out);
    double exc = 0;
    for (const auto& m : list.metas()) exc += m.hdr.pfor().n_exceptions;
    exc /= static_cast<double>(list.num_blocks());
    std::printf("%-18s %14.2f %14.3f %16.1f\n", label,
                list.bits_per_posting(),
                (link.transfer_time(list.blob().size() * 8) +
                 model.kernel_time(stats))
                    .ms(),
                exc);
  };

  run_pfor(0, "PFor (auto b)");
  run_pfor(5, "PFor (b=5)");
  run_pfor(4, "PFor (b=4)");
  run_pfor(3, "PFor (b=3)");

  {
    const auto list = codec::BlockCompressedList::build(
        docs, codec::Scheme::kEliasFano);
    simt::Device dev(hw.gpu, hw.pcie.device_mem_bytes);
    pcie::TransferLedger ledger;
    gpu::DeviceList dl = gpu::upload_list(dev, list, link, ledger);
    auto out = dev.alloc<index::DocId>(list.size());
    const auto stats = gpu::ef_decode_range(dev, dl, 0, dl.num_blocks(), out);
    std::printf("%-18s %14.2f %14.3f %16s\n", "Para-EF",
                list.bits_per_posting(),
                (link.transfer_time(list.blob().size() * 8) +
                 model.kernel_time(stats))
                    .ms(),
                "-");
  }
  return 0;
}
