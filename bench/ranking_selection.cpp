// Figure 7 — ranking selection: CPU std::partial_sort vs GPU bucketSelect vs
// GPU radixSort over candidate result lists of 1K..10M entries (k = 10).
// The paper's finding — which Griffin adopts — is that the CPU wins at the
// result-set sizes real queries produce, because tiny inputs cannot amortize
// GPU launch, allocation and transfer overheads. GPU columns include the
// score-list upload and all kernels/round trips.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "cpu/bm25.h"
#include "gpu/sort.h"
#include "util/rng.h"

using namespace griffin;

int main() {
  bench::print_header(
      "Figure 7: Ranking Performance Comparison (top-10 selection)",
      "CPU partial_sort best at realistic result counts; GPU only catches up "
      "in the millions");

  const sim::HardwareSpec hw;
  const sim::GpuCostModel gpu_model(hw.gpu);
  const pcie::Link link(hw.pcie);
  util::Xoshiro256 rng(777);

  std::printf("%-10s %14s %18s %16s\n", "list size", "CPU psort (ms)",
              "GPU bucketSel (ms)", "GPU radix (ms)");

  std::vector<std::uint64_t> sizes{1'000, 10'000, 100'000, 1'000'000,
                                   10'000'000};
  if (bench::fast_mode()) sizes.pop_back();
  for (const std::uint64_t n : sizes) {
    // Candidate scores.
    std::vector<core::ScoredDoc> scored(n);
    std::vector<gpu::DevScored> dev_scored(n);
    for (std::uint64_t i = 0; i < n; ++i) {
      const float s = static_cast<float>(rng.uniform01() * 40.0);
      scored[i] = {static_cast<index::DocId>(i), s};
      dev_scored[i] = {gpu::float_to_key(s), static_cast<std::uint32_t>(i)};
    }

    // CPU partial_sort.
    sim::CpuCostAccumulator acc(hw.cpu);
    auto copy = scored;
    cpu::top_k(copy, 10, acc);
    const double cpu_ms = acc.time().ms();

    // GPU bucketSelect: upload + kernels + round trips.
    double bucket_ms, radix_ms;
    {
      simt::Device dev(hw.gpu, hw.pcie.device_mem_bytes);
      pcie::TransferLedger ledger;
      auto buf = dev.alloc<gpu::DevScored>(n);
      ledger.add_alloc(link);
      dev.upload(buf, std::span<const gpu::DevScored>(dev_scored));
      ledger.add_transfer(link, n * sizeof(gpu::DevScored), true);
      const auto r = gpu::bucket_select_topk(dev, buf, n, 10, link, ledger);
      bucket_ms = (ledger.total + gpu_model.kernel_time(r.stats)).ms();
    }
    {
      simt::Device dev(hw.gpu, hw.pcie.device_mem_bytes);
      pcie::TransferLedger ledger;
      auto buf = dev.alloc<gpu::DevScored>(n);
      ledger.add_alloc(link);
      dev.upload(buf, std::span<const gpu::DevScored>(dev_scored));
      ledger.add_transfer(link, n * sizeof(gpu::DevScored), true);
      const auto r = gpu::radix_sort_topk(dev, buf, n, 10, link, ledger);
      radix_ms = (ledger.total + gpu_model.kernel_time(r.stats)).ms();
    }

    std::printf("%-10llu %14.3f %18.3f %16.3f\n",
                static_cast<unsigned long long>(n), cpu_ms, bucket_ms,
                radix_ms);
  }
  std::printf(
      "\nNote: real conjunctive queries rarely match more than a few\n"
      "thousand documents (paper §3.1.3), where the CPU rank wins outright —\n"
      "Griffin therefore always ranks on the CPU.\n");
  return 0;
}
