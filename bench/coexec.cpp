// Co-execution ablation (DESIGN.md §15). Four engine configurations —
// step splitting on/off x inter-step pipelining on/off — run the same two
// workloads:
//   * the paper's mixed query log (splits fire only where the scheduler's
//     band admits them);
//   * a band-targeted set of pair queries whose list-length ratios land
//     inside the split band [lambda_lo, lambda_hi], where co-executing one
//     step is exactly what the three-way scheduler is for.
// Results must be bit-identical across all four configurations (the
// features move work between processors, never change it); the bench
// asserts that and records a top-k digest, which doubles as the
// determinism anchor: two runs of this bench must emit byte-identical
// JSON, and CI diffs them.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/hybrid_engine.h"
#include "util/stats.h"

using namespace griffin;

namespace {

struct Config {
  const char* name;
  bool split;
  bool pipeline;
};

struct RunStats {
  util::PercentileTracker latency;
  std::uint64_t split_steps = 0;
  std::uint64_t host_decodes = 0;
  std::uint64_t prefetch_issued = 0;
  std::uint64_t prefetch_used = 0;
  double overlap_saved_ms = 0.0;
  std::uint64_t digest = 0;  ///< FNV over top-k docs and score bits
};

void fold_digest(std::uint64_t& d, std::uint64_t v) {
  d = (d ^ v) * 1099511628211ull;
}

RunStats run_workload(const index::InvertedIndex& idx, const Config& cfg,
                      const std::vector<core::Query>& log) {
  core::HybridOptions opt;
  opt.scheduler.split = cfg.split;
  opt.scheduler.pipeline_idle = cfg.pipeline;
  core::HybridEngine engine(idx, {}, opt);
  RunStats st;
  st.digest = 14695981039346656037ull;
  for (const auto& q : log) {
    const auto res = engine.execute(q);
    st.latency.add(res.metrics.total.ms());
    core::TraceSummary sum;
    sum.add(res.trace);
    st.split_steps += sum.split_intersects;
    st.host_decodes += sum.host_decode_steps;
    st.prefetch_issued += res.metrics.overlap.prefetch_issued;
    st.prefetch_used += res.metrics.overlap.prefetch_used;
    st.overlap_saved_ms += res.metrics.overlap.saved.ms();
    fold_digest(st.digest, res.metrics.result_count);
    for (const auto& d : res.topk) {
      fold_digest(st.digest, d.doc);
      fold_digest(st.digest, std::bit_cast<std::uint32_t>(d.score));
    }
  }
  return st;
}

/// Band-targeted pair workload. Natural Zipf corpora rarely put a large
/// probe against a list hundreds of times longer, so the band regime is
/// synthesized the way bench/crossover does: the shorter list indexed twice
/// (step 1 is the identity intersect, leaving it as the resident
/// intermediate) against a list lambda times longer — step 2 is then
/// exactly the in-band steady-state step the split scheduler targets.
/// VarByte, not Elias-Fano: these synthetic lists are dense (up to ~44% of
/// the universe), and EF compresses them under a byte per element, which
/// cheapens the GPU leg's deferred transfer enough that a pure-GPU step
/// clears the split's min-gain gate. VarByte's >= 1 B/elem payload keeps
/// the transfer term honest and the three-way comparison lands on kSplit —
/// the regime this workload exists to exercise.
struct BandPair {
  index::InvertedIndex idx;
  core::Query q;
};

std::vector<BandPair> band_targeted_pairs() {
  util::Xoshiro256 rng(515);
  const index::DocId universe = 48'000'000;
  const std::uint64_t shorter = bench::fast_mode() ? 48'000 : 192'000;
  std::vector<BandPair> out;
  for (const double lambda : {160.0, 224.0, 320.0, 440.0}) {
    const auto pair = workload::make_pair_with_ratio(
        static_cast<std::uint64_t>(lambda * static_cast<double>(shorter)),
        lambda, universe, 0.4, rng);
    BandPair bp{index::InvertedIndex(codec::Scheme::kVarByte), {}};
    bp.idx.docs().resize(universe);
    bp.idx.add_list(pair.shorter);
    bp.idx.add_list(pair.shorter);
    bp.idx.add_list(pair.longer);
    bp.q.terms = {0, 1, 2};
    bp.q.k = 10;
    out.push_back(std::move(bp));
  }
  return out;
}

RunStats run_pairs(const std::vector<BandPair>& pairs, const Config& cfg) {
  RunStats st;
  st.digest = 14695981039346656037ull;
  for (const auto& bp : pairs) {
    core::HybridOptions opt;
    opt.scheduler.split = cfg.split;
    opt.scheduler.pipeline_idle = cfg.pipeline;
    core::HybridEngine engine(bp.idx, {}, opt);
    const auto res = engine.execute(bp.q);
    st.latency.add(res.metrics.total.ms());
    core::TraceSummary sum;
    sum.add(res.trace);
    st.split_steps += sum.split_intersects;
    st.host_decodes += sum.host_decode_steps;
    st.prefetch_issued += res.metrics.overlap.prefetch_issued;
    st.prefetch_used += res.metrics.overlap.prefetch_used;
    st.overlap_saved_ms += res.metrics.overlap.saved.ms();
    fold_digest(st.digest, res.metrics.result_count);
    for (const auto& d : res.topk) {
      fold_digest(st.digest, d.doc);
      fold_digest(st.digest, std::bit_cast<std::uint32_t>(d.score));
    }
  }
  return st;
}

bench::Json stats_json(const RunStats& st) {
  bench::Json j = bench::Json::object();
  j["latency"] = bench::latency_json(st.latency);
  j["split_steps"] = st.split_steps;
  j["host_decode_steps"] = st.host_decodes;
  j["prefetch_issued"] = st.prefetch_issued;
  j["prefetch_used"] = st.prefetch_used;
  j["overlap_saved_ms"] = st.overlap_saved_ms;
  j["topk_digest"] = std::to_string(st.digest);  // string: exact uint64
  return j;
}

}  // namespace

int main() {
  bench::print_header(
      "Co-execution ablation: split steps and inter-step pipelining",
      "intra-query CPU+GPU parallelism on top of per-step placement");

  const auto corpus_cfg = bench::paper_corpus_config();
  const auto idx = bench::cached_corpus(corpus_cfg);
  const auto mixed = workload::generate_query_log(
      bench::paper_query_config(120, corpus_cfg),
      static_cast<std::uint32_t>(idx.num_terms()));
  const auto banded = band_targeted_pairs();

  const Config configs[] = {
      {"baseline", false, false},
      {"split", true, false},
      {"pipeline", false, true},
      {"split+pipeline", true, true},
  };

  bench::Json root = bench::Json::object();
  root["bench"] = "coexec";
  root["fast_mode"] = bench::fast_mode();
  root["band_queries"] = static_cast<std::uint64_t>(banded.size());

  for (const auto* wl : {"mixed", "band"}) {
    const bool is_mixed = std::string(wl) == "mixed";
    std::printf("\n%s workload (%zu queries):\n", wl,
                is_mixed ? mixed.size() : banded.size());
    std::printf("  %-16s %10s %10s %8s %8s %10s %8s\n", "config", "mean(ms)",
                "p95(ms)", "splits", "hostdec", "pf use/iss", "vs base");
    bench::Json rows = bench::Json::object();
    double base_mean = 0.0;
    std::uint64_t base_digest = 0;
    bool identical = true;
    for (const auto& cfg : configs) {
      const RunStats st =
          is_mixed ? run_workload(idx, cfg, mixed) : run_pairs(banded, cfg);
      const double mean = st.latency.count() ? st.latency.mean() : 0.0;
      if (std::string(cfg.name) == "baseline") {
        base_mean = mean;
        base_digest = st.digest;
      } else if (st.digest != base_digest) {
        identical = false;
      }
      std::printf("  %-16s %10.3f %10.3f %8llu %8llu %5llu/%-4llu %7.3fx\n",
                  cfg.name, mean,
                  st.latency.count() ? st.latency.percentile(95) : 0.0,
                  static_cast<unsigned long long>(st.split_steps),
                  static_cast<unsigned long long>(st.host_decodes),
                  static_cast<unsigned long long>(st.prefetch_used),
                  static_cast<unsigned long long>(st.prefetch_issued),
                  mean > 0.0 ? base_mean / mean : 0.0);
      bench::Json row = stats_json(st);
      row["speedup_vs_baseline"] = mean > 0.0 ? base_mean / mean : 0.0;
      rows[cfg.name] = std::move(row);
    }
    if (!identical) {
      std::fprintf(stderr,
                   "[coexec] RESULT MISMATCH: co-execution changed results\n");
    }
    rows["results_identical"] = identical;
    root[wl] = std::move(rows);
    std::printf("  (top-k digests %s across configs)\n",
                identical ? "identical" : "DIVERGED");
  }

  bench::write_bench_json("coexec", root);
  return 0;
}
