// Figure 15 — tail latency: per-query latency percentiles of the CPU-only
// engine vs Griffin over a query log. The paper reports speedups of 6.6x,
// 8.3x, 10.4x, 16.1x and 26.8x at the 80th/90th/95th/99th/99.9th
// percentiles: the long-tail queries are exactly the ones with long,
// balanced lists where the GPU's parallelism pays off most.
#include <cstdio>

#include "bench_common.h"
#include "core/hybrid_engine.h"
#include "util/stats.h"

using namespace griffin;

int main() {
  const auto cfg = bench::paper_corpus_config();
  std::fprintf(stderr, "[tail_latency] building/loading corpus...\n");
  const auto idx = bench::cached_corpus(cfg);

  bench::print_header(
      "Figure 15: Tail Latency Reduction with Griffin",
      "speedups 6.6x/8.3x/10.4x/16.1x/26.8x at p80/p90/p95/p99/p99.9");

  cpu::CpuEngine cpu_engine(idx);
  core::HybridEngine griffin(idx);

  auto qcfg = bench::paper_query_config(400, cfg);
  const auto log = workload::generate_query_log(qcfg, cfg.num_terms);

  util::PercentileTracker cpu_ms, grif_ms;
  cpu_ms.reserve(log.size());
  grif_ms.reserve(log.size());
  core::OverlapCounters grif_overlap;
  std::size_t done = 0;
  for (const auto& q : log) {
    cpu_ms.add(cpu_engine.execute(q).metrics.total.ms());
    const auto grif_res = griffin.execute(q);
    grif_ms.add(grif_res.metrics.total.ms());
    grif_overlap += grif_res.metrics.overlap;
    if (++done % 100 == 0) {
      std::fprintf(stderr, "[tail_latency] %zu/%zu queries\n", done,
                   log.size());
    }
  }

  std::printf("(%zu queries; p99.9 of small logs equals the max sample)\n\n",
              log.size());
  std::printf("%-12s %12s %14s %10s\n", "percentile", "CPU (ms)",
              "Griffin (ms)", "speedup");
  bench::Json rows = bench::Json::array();
  for (const double p : {80.0, 90.0, 95.0, 99.0, 99.9}) {
    const double c = cpu_ms.percentile(p);
    const double g = grif_ms.percentile(p);
    std::printf("%-12.1f %12.3f %14.3f %9.1fx\n", p, c, g, c / g);
    bench::Json row = bench::Json::object();
    row["percentile"] = p;
    row["cpu_ms"] = c;
    row["griffin_ms"] = g;
    row["speedup"] = c / g;
    rows.push_back(std::move(row));
  }
  std::printf("%-12s %12.3f %14.3f %9.1fx\n", "mean", cpu_ms.mean(),
              grif_ms.mean(), cpu_ms.mean() / grif_ms.mean());

  bench::Json root = bench::Json::object();
  root["bench"] = "tail_latency";
  root["fast_mode"] = bench::fast_mode();
  root["queries"] = static_cast<std::uint64_t>(log.size());
  root["percentiles"] = std::move(rows);
  root["cpu"] = bench::latency_json(cpu_ms);
  root["griffin"] = bench::latency_json(grif_ms);
  root["mean_speedup"] = cpu_ms.mean() / grif_ms.mean();
  root["griffin_overlap"] = bench::overlap_json(grif_overlap);
  bench::write_bench_json("tail_latency", root);
  return 0;
}
