// Extension bench — query service under load (the paper's future work:
// "more complex scenarios under heavy system loads with multiple users").
// Poisson arrivals into a single query-processing node; FCFS. Griffin's
// shorter heavy queries reduce head-of-line blocking, so its advantage in
// *response* time (queueing + service) exceeds its advantage in service
// time alone, and the node sustains a higher offered load.
#include <cstdio>

#include "bench_common.h"
#include "core/hybrid_engine.h"
#include "service/service_sim.h"

using namespace griffin;

int main() {
  auto cfg = bench::paper_corpus_config();
  cfg.num_docs = bench::fast_mode() ? 500'000 : 3'000'000;
  cfg.num_terms = bench::fast_mode() ? 300 : 2'000;
  std::fprintf(stderr, "[service_load] building/loading corpus...\n");
  const auto idx = bench::cached_corpus(cfg);

  auto qcfg = bench::paper_query_config(200, cfg);
  const auto log = workload::generate_query_log(qcfg, cfg.num_terms);

  bench::print_header(
      "Extension: interactive service under load (Poisson arrivals, FCFS)",
      "future work in the paper; Griffin's tail gains compound with queueing");

  cpu::CpuEngine cpu_engine(idx);
  core::HybridEngine griffin(idx);

  // One execution pass per engine; the load sweep reuses the times.
  std::fprintf(stderr, "[service_load] measuring service times...\n");
  core::OverlapCounters cpu_overlap;
  const auto cpu_times = service::measure_service_times(
      cpu_engine, log, nullptr, nullptr, &cpu_overlap);
  core::OverlapCounters grif_overlap;
  const auto grif_times = service::measure_service_times(
      griffin, log, nullptr, nullptr, &grif_overlap);

  // Per-resource busy fraction of a run: the engines' summed timeline busy
  // over the FCFS makespan at this load (the same rule the engine-executing
  // run_service overload applies).
  const auto fractions = [](const core::OverlapCounters& o,
                            sim::Duration horizon) {
    std::array<double, sim::kNumResources> u{};
    if (horizon.ps() > 0) {
      for (std::size_t r = 0; r < sim::kNumResources; ++r) {
        u[r] = o.busy(static_cast<sim::Resource>(r)) / horizon;
      }
    }
    return u;
  };

  std::printf("%-10s %-9s %12s %12s %12s %12s %8s\n", "load(qps)", "engine",
              "util", "p50 resp", "p95 resp", "p99 resp", "h2d");
  bench::Json rows = bench::Json::array();
  for (const double qps : {50.0, 100.0, 200.0, 400.0}) {
    service::ServiceConfig scfg;
    scfg.arrival_qps = qps;
    const auto rc = service::run_service(
        std::span<const sim::Duration>(cpu_times), scfg);
    const auto rg = service::run_service(
        std::span<const sim::Duration>(grif_times), scfg);
    const auto uc = fractions(cpu_overlap, rc.horizon);
    const auto ug = fractions(grif_overlap, rg.horizon);
    std::printf("%-10.0f %-9s %11.0f%% %11.2f %11.2f %11.2f %7.1f%%\n", qps,
                "cpu", 100.0 * rc.utilization, rc.response_ms.percentile(50),
                rc.response_ms.percentile(95), rc.response_ms.percentile(99),
                100.0 * uc[std::size_t(sim::Resource::kCopyH2D)]);
    std::printf("%-10.0f %-9s %11.0f%% %11.2f %11.2f %11.2f %7.1f%%\n", qps,
                "griffin", 100.0 * rg.utilization,
                rg.response_ms.percentile(50), rg.response_ms.percentile(95),
                rg.response_ms.percentile(99),
                100.0 * ug[std::size_t(sim::Resource::kCopyH2D)]);
    bench::Json row = bench::Json::object();
    row["qps"] = qps;
    row["cpu_utilization"] = rc.utilization;
    row["griffin_utilization"] = rg.utilization;
    row["cpu_response"] = bench::latency_json(rc.response_ms);
    row["griffin_response"] = bench::latency_json(rg.response_ms);
    row["cpu_resource_utilization"] = bench::resource_utilization_json(uc);
    row["griffin_resource_utilization"] = bench::resource_utilization_json(ug);
    row["cpu_max_queue_depth"] = rc.max_queue_depth;
    row["griffin_max_queue_depth"] = rg.max_queue_depth;
    rows.push_back(std::move(row));
  }
  std::printf("\n(response = queueing + service, simulated ms; at loads where "
              "the CPU-only\nnode saturates, Griffin still serves with "
              "bounded queues)\n");

  bench::Json root = bench::Json::object();
  root["bench"] = "service_load";
  root["fast_mode"] = bench::fast_mode();
  root["queries"] = static_cast<std::uint64_t>(log.size());
  root["loads"] = std::move(rows);
  root["griffin_overlap"] = bench::overlap_json(grif_overlap);
  bench::write_bench_json("service_load", root);
  return 0;
}
