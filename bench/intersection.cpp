// Figure 13 — list intersection: CPU merge, CPU binary (skip pointers),
// GPU merge (MergePath) and GPU binary search, on pairs of comparable
// lengths (ratio < 16), sweeping the longer list from 1K to 10M. The paper
// reports GPU merge up to 87x over CPU merge, GPU binary up to ~102x over
// CPU binary, and GPU merge up to 2.29x over GPU binary. GPU columns include
// transfers, allocations and kernel launches.
//
// The CPU columns additionally ablate the vector unit (DESIGN.md §13):
// scalar vs the testbed's SSE4 vs the modern AVX2 profile, for both the
// shuffle-based block merge (Lemire et al.'s measured 2-5x band) and the
// branch-bound skip/binary search (a modest 1.3-1.8x — vector compares
// only replace the last levels of each search). Outputs are bit-identical;
// only charged time moves.
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "cpu/intersect.h"
#include "gpu/binary_intersect.h"
#include "gpu/ef_decode.h"
#include "gpu/engine.h"
#include "gpu/mergepath.h"
#include "util/rng.h"

using namespace griffin;

namespace {

const sim::HardwareSpec hw;
const sim::GpuCostModel gpu_model(hw.gpu);
const pcie::Link link_model(hw.pcie);

double cpu_merge_ms(const codec::BlockCompressedList& a,
                    const codec::BlockCompressedList& b,
                    const sim::CpuSpec& spec) {
  sim::CpuCostAccumulator acc(spec);
  std::vector<index::DocId> out;
  cpu::merge_intersect(a, b, out, acc);
  return acc.time().ms();
}

double cpu_binary_ms(const codec::BlockCompressedList& b,
                     std::span<const index::DocId> a_decoded,
                     const sim::CpuSpec& spec) {
  // Probe the shorter (already decoded) side into the longer via skips.
  sim::CpuCostAccumulator acc(spec);
  std::vector<index::DocId> out;
  cpu::skip_intersect(a_decoded, b, out, acc);
  return acc.time().ms();
}

struct GpuSide {
  simt::Device dev{hw.gpu, hw.pcie.device_mem_bytes};
  pcie::TransferLedger ledger;

  /// Upload+decode both lists, then MergePath.
  double merge_ms(const codec::BlockCompressedList& a,
                  const codec::BlockCompressedList& b) {
    sim::Duration total;
    pcie::TransferLedger led;
    gpu::DeviceList da = gpu::upload_list(dev, a, link_model, led);
    gpu::DeviceList db = gpu::upload_list(dev, b, link_model, led);
    auto outa = dev.alloc<index::DocId>(a.size());
    auto outb = dev.alloc<index::DocId>(b.size());
    led.add_alloc(link_model);
    led.add_alloc(link_model);
    total += gpu_model.kernel_time(
        gpu::ef_decode_range(dev, da, 0, da.num_blocks(), outa));
    total += gpu_model.kernel_time(
        gpu::ef_decode_range(dev, db, 0, db.num_blocks(), outb));
    auto r = gpu::mergepath_intersect(dev, outa, a.size(), outb, b.size(),
                                      link_model, led);
    total += gpu_model.kernel_time(r.stats);
    total += led.total;
    return total.ms();
  }

  /// Decode the shorter list, then parallel binary search into the longer
  /// (deferred payload: only candidate blocks transfer).
  double binary_ms(const codec::BlockCompressedList& a,
                   const codec::BlockCompressedList& b) {
    sim::Duration total;
    pcie::TransferLedger led;
    gpu::DeviceList da = gpu::upload_list(dev, a, link_model, led);
    auto probes = dev.alloc<index::DocId>(a.size());
    led.add_alloc(link_model);
    total += gpu_model.kernel_time(
        gpu::ef_decode_range(dev, da, 0, da.num_blocks(), probes));
    gpu::DeviceList db = gpu::upload_list(dev, b, link_model, led, true);
    auto r = gpu::binary_search_intersect(dev, probes, a.size(), db,
                                          link_model, led, true);
    total += gpu_model.kernel_time(r.stats);
    total += led.total;
    return total.ms();
  }
};

}  // namespace

int main() {
  bench::print_header(
      "Figure 13: List Intersection Comparison (comparable lengths, ratio 4)",
      "GPU merge up to 87x over CPU merge; GPU merge ~2.3x over GPU binary");

  util::Xoshiro256 rng(321);
  const sim::CpuSpec scalar{};
  const sim::CpuSpec sse4 = sim::CpuSpec::sse4_testbed();
  const sim::CpuSpec avx2 = sim::CpuSpec::modern_avx2();
  std::printf("%-10s %11s %11s %11s %11s %11s %11s %11s %11s %8s %8s\n",
              "longer", "CPUmerge", "CMsse4", "CMavx2", "CPUbinary", "CBsse4",
              "CBavx2", "GPUmerge", "GPUbinary", "GM/CM", "GB/CB");

  bench::Json rows = bench::Json::array();
  std::vector<std::uint64_t> sizes{1'000, 10'000, 100'000, 1'000'000,
                                   10'000'000};
  if (bench::fast_mode()) sizes.pop_back();
  for (const std::uint64_t n : sizes) {
    const auto pair = workload::make_pair_with_ratio(
        n, 4.0, static_cast<index::DocId>(std::min<std::uint64_t>(
                    n * 16ull, 0xFFFFFFF0ull)),
        0.4, rng);
    const auto la = codec::BlockCompressedList::build(
        pair.shorter, codec::Scheme::kEliasFano);
    const auto lb = codec::BlockCompressedList::build(
        pair.longer, codec::Scheme::kEliasFano);

    const double cm = cpu_merge_ms(la, lb, scalar);
    const double cm4 = cpu_merge_ms(la, lb, sse4);
    const double cm8 = cpu_merge_ms(la, lb, avx2);
    const double cb = cpu_binary_ms(lb, pair.shorter, scalar);
    const double cb4 = cpu_binary_ms(lb, pair.shorter, sse4);
    const double cb8 = cpu_binary_ms(lb, pair.shorter, avx2);
    GpuSide g;
    const double gm = g.merge_ms(la, lb);
    const double gb = g.binary_ms(la, lb);

    std::printf("%-10llu %11.3f %11.3f %11.3f %11.3f %11.3f %11.3f %11.3f "
                "%11.3f %7.1fx %7.1fx\n",
                static_cast<unsigned long long>(n), cm, cm4, cm8, cb, cb4, cb8,
                gm, gb, cm / gm, cb / gb);
    bench::Json row = bench::Json::object();
    row["longer"] = n;
    row["cpu_merge_ms"] = cm;
    row["cpu_merge_sse4_ms"] = cm4;
    row["cpu_merge_avx2_ms"] = cm8;
    row["cpu_binary_ms"] = cb;
    row["cpu_binary_sse4_ms"] = cb4;
    row["cpu_binary_avx2_ms"] = cb8;
    row["gpu_merge_ms"] = gm;
    row["gpu_binary_ms"] = gb;
    row["merge_sse4_speedup"] = cm / cm4;
    row["merge_avx2_speedup"] = cm / cm8;
    row["binary_sse4_speedup"] = cb / cb4;
    row["binary_avx2_speedup"] = cb / cb8;
    rows.push_back(std::move(row));
  }

  bench::Json root = bench::Json::object();
  root["bench"] = "intersection";
  root["fast_mode"] = bench::fast_mode();
  root["rows"] = std::move(rows);
  bench::write_bench_json("intersection", root);
  return 0;
}
