// Figure 14 — end-to-end query latency by term count, for the three system
// configurations the paper compares: the CPU-only engine, Griffin-GPU alone
// ("GPU only"), and Griffin (hybrid, intra-query scheduling). The paper
// reports Griffin ~10x over CPU-only and ~1.5x over GPU-only on average.
#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"
#include "core/hybrid_engine.h"
#include "util/stats.h"

using namespace griffin;

int main() {
  const auto cfg = bench::paper_corpus_config();
  std::fprintf(stderr, "[end_to_end] building/loading corpus...\n");
  const auto idx = bench::cached_corpus(cfg);

  bench::print_header(
      "Figure 14: End-to-End Query Latency by Number of Terms",
      "Griffin ~10x over CPU-only, ~1.5x over GPU-only (average)");

  cpu::CpuEngine cpu_engine(idx);
  gpu::GpuEngine gpu_engine(idx);
  core::HybridEngine griffin(idx);
  core::HybridOptions cost_opt;
  cost_opt.scheduler.policy = core::SchedulerPolicy::kCostModel;
  core::HybridEngine griffin_cost(idx, {}, cost_opt);

  // Bucket a generated log by term count, keeping a fixed number per group.
  const std::uint32_t per_group = bench::fast_mode() ? 2 : 8;
  auto qcfg = bench::paper_query_config(4000, cfg);
  const auto log = workload::generate_query_log(qcfg, cfg.num_terms);
  std::map<int, std::vector<core::Query>> groups;
  for (const auto& q : log) {
    const int g = std::min<int>(static_cast<int>(q.terms.size()), 7);
    if (groups[g].size() < per_group) groups[g].push_back(q);
  }

  std::printf("%-8s %8s %11s %11s %11s %12s %8s %8s\n", "#terms", "queries",
              "CPU (ms)", "GPUonly(ms)", "Griffin(ms)", "Grif-cost(ms)",
              "vs CPU", "vs GPU");

  // Per-query plan traces as JSONL when GRIFFIN_TRACE_DIR is set: one line
  // per (engine, query) with every recorded step.
  bench::TraceWriter trace_out("end_to_end");

  bench::Json group_rows = bench::Json::array();
  core::CacheCounters grif_cache;
  core::OverlapCounters grif_overlap;
  util::SummaryStats all_cpu, all_gpu, all_grif, all_cost;
  std::uint64_t query_id = 0;
  for (const auto& [g, queries] : groups) {
    double cpu_ms = 0, gpu_ms = 0, grif_ms = 0, cost_ms = 0;
    for (const auto& q : queries) {
      const auto cpu_res = cpu_engine.execute(q);
      cpu_ms += cpu_res.metrics.total.ms();
      const auto gpu_res = gpu_engine.execute(q);
      gpu_ms += gpu_res.metrics.total.ms();
      const auto grif_res = griffin.execute(q);
      grif_ms += grif_res.metrics.total.ms();
      grif_cache += grif_res.metrics.cache;
      grif_overlap += grif_res.metrics.overlap;
      const auto cost_res = griffin_cost.execute(q);
      cost_ms += cost_res.metrics.total.ms();
      trace_out.write("cpu", query_id, q, cpu_res);
      trace_out.write("gpu_only", query_id, q, gpu_res);
      trace_out.write("griffin", query_id, q, grif_res);
      trace_out.write("griffin_cost_model", query_id, q, cost_res);
      ++query_id;
    }
    const auto n = static_cast<double>(queries.size());
    cpu_ms /= n;
    gpu_ms /= n;
    grif_ms /= n;
    cost_ms /= n;
    all_cpu.add(cpu_ms);
    all_gpu.add(gpu_ms);
    all_grif.add(grif_ms);
    all_cost.add(cost_ms);
    char label[8];
    std::snprintf(label, sizeof(label), g >= 7 ? ">6" : "%d", g);
    std::printf("%-8s %8zu %11.3f %11.3f %11.3f %12.3f %7.1fx %7.2fx\n",
                label, queries.size(), cpu_ms, gpu_ms, grif_ms, cost_ms,
                cpu_ms / grif_ms, gpu_ms / grif_ms);

    bench::Json row = bench::Json::object();
    row["terms"] = label;
    row["queries"] = static_cast<std::uint64_t>(queries.size());
    row["cpu_ms"] = cpu_ms;
    row["gpu_only_ms"] = gpu_ms;
    row["griffin_ms"] = grif_ms;
    row["griffin_cost_model_ms"] = cost_ms;
    group_rows.push_back(std::move(row));
  }

  std::printf("\nAverage across groups: Griffin %.1fx vs CPU-only (paper ~10x), "
              "%.2fx vs GPU-only (paper ~1.5x)\n",
              all_cpu.mean() / all_grif.mean(),
              all_gpu.mean() / all_grif.mean());
  std::printf("Cost-model scheduler (extension): %.1fx vs CPU-only, "
              "%.2fx vs GPU-only\n",
              all_cpu.mean() / all_cost.mean(),
              all_gpu.mean() / all_cost.mean());

  // ---- Scale trend ----
  // The paper's corpus (ClueWeb12, 41M docs, lists to 26M) is ~7x this
  // bench's default. CPU latency grows linearly with list volume while
  // Griffin's fixed GPU overheads do not, so the vs-CPU speedup grows with
  // corpus scale; this trend is the bridge between the measured factor
  // above and the paper's 10x.
  std::printf("\nScale trend (same query mix, growing corpus):\n");
  std::printf("%-12s %12s %14s %10s\n", "num_docs", "CPU (ms)",
              "Griffin (ms)", "speedup");
  for (const std::uint32_t docs :
       {cfg.num_docs / 4, cfg.num_docs / 2, cfg.num_docs}) {
    workload::CorpusConfig scfg = cfg;
    scfg.num_docs = docs;
    const auto sidx = bench::cached_corpus(scfg);
    cpu::CpuEngine scpu(sidx);
    core::HybridEngine sgrif(sidx);
    auto sqcfg = bench::paper_query_config(12, scfg);
    sqcfg.num_queries = bench::fast_mode() ? 4 : 12;
    const auto slog = workload::generate_query_log(sqcfg, scfg.num_terms);
    double c_ms = 0, g_ms = 0;
    for (const auto& q : slog) {
      c_ms += scpu.execute(q).metrics.total.ms();
      g_ms += sgrif.execute(q).metrics.total.ms();
    }
    std::printf("%-12u %12.3f %14.3f %9.1fx\n", docs,
                c_ms / static_cast<double>(slog.size()),
                g_ms / static_cast<double>(slog.size()), c_ms / g_ms);
  }

  bench::Json root = bench::Json::object();
  root["bench"] = "end_to_end";
  root["fast_mode"] = bench::fast_mode();
  root["num_docs"] = cfg.num_docs;
  root["num_terms"] = cfg.num_terms;
  root["groups"] = std::move(group_rows);
  root["speedup_vs_cpu"] = all_cpu.mean() / all_grif.mean();
  root["speedup_vs_gpu"] = all_gpu.mean() / all_grif.mean();
  root["cost_model_speedup_vs_cpu"] = all_cpu.mean() / all_cost.mean();
  root["cost_model_speedup_vs_gpu"] = all_gpu.mean() / all_cost.mean();
  bench::Json cachej = bench::Json::object();
  cachej["device_hit_rate"] = grif_cache.device_hit_rate();
  cachej["host_hit_rate"] = grif_cache.host_hit_rate();
  cachej["device_hits"] = grif_cache.device_hits;
  cachej["host_hits"] = grif_cache.host_hits;
  root["griffin_cache"] = std::move(cachej);
  root["griffin_overlap"] = bench::overlap_json(grif_overlap);
  bench::write_bench_json("end_to_end", root);
  return 0;
}
