// Extension bench — cluster scaling (the paper's closing future work:
// "more complex scenarios under heavy system loads with multiple users",
// taken to its production shape). One logical index is served as N
// document-partitioned shards behind a scatter-gather broker
// (src/cluster/); this bench sweeps the shard count and independently
// toggles the broker's two latency defenses:
//
//   - hedged requests, under deterministic straggler injection (5% of
//     primary shard requests run 20x slow): the adaptive-p95 hedge
//     re-issues exactly those to an idle replica, collapsing p99;
//   - the LRU result cache, fed a Zipf-skewed repeated query stream: the
//     popular head is answered at the broker without any shard fan-out.
//
// Everything is seeded; two runs print identical tables.
#include <cstdio>

#include "bench_common.h"
#include "cluster/broker.h"
#include "core/hybrid_engine.h"
#include "service/service_sim.h"

using namespace griffin;

namespace {

const char* onoff(bool b) { return b ? "on" : "off"; }

}  // namespace

int main() {
  workload::CorpusConfig cfg = bench::paper_corpus_config();
  cfg.num_docs = bench::fast_mode() ? 200'000 : 1'000'000;
  cfg.num_terms = bench::fast_mode() ? 300 : 1'500;
  std::fprintf(stderr, "[cluster_scaling] building/loading corpus...\n");
  const auto idx = bench::cached_corpus(cfg);

  // Zipf-skewed repeated stream: the head recurs, so the cache has heads to
  // hit; the tail keeps the shards honest.
  auto base = bench::paper_query_config(1, cfg);
  workload::RepeatedLogConfig rep;
  rep.num_queries = static_cast<std::uint32_t>(bench::scaled(600));
  rep.unique_queries = static_cast<std::uint32_t>(bench::scaled(150));
  rep.popularity_zipf_s = 1.1;
  rep.seed = 505;
  const auto stream =
      workload::generate_repeated_query_log(base, rep, cfg.num_terms);

  // Offered load calibrated to the single-node service rate so the 1-shard
  // baseline runs at moderate utilization and scaling headroom is visible.
  core::HybridEngine probe(idx);
  sim::Duration probe_total;
  const std::size_t probe_n = std::min<std::size_t>(stream.size(), 50);
  for (std::size_t i = 0; i < probe_n; ++i) {
    probe_total += probe.execute(stream[i]).metrics.total;
  }
  const double mean_service_s =
      probe_total.seconds() / static_cast<double>(probe_n);
  const double qps = 0.5 / mean_service_s;

  bench::print_header(
      "Extension: cluster scaling — sharded scatter-gather broker",
      "future work (heavy system loads, multiple users); Dean & Barroso "
      "hedging");
  std::printf("corpus: %u docs, %u terms; stream: %u queries (%u unique), "
              "offered load %.0f qps\nstragglers: 5%% of primary shard "
              "requests run 20x slow (injected, seeded)\n\n",
              cfg.num_docs, cfg.num_terms, rep.num_queries,
              rep.unique_queries, qps);
  std::printf("%-7s %-6s %-6s %9s %9s %9s %8s %8s %9s %8s %8s\n", "shards",
              "hedge", "cache", "p50(ms)", "p99(ms)", "util", "hit%",
              "hedges", "hedgewon", "dev-h%", "host-h%");

  bench::Json rows = bench::Json::array();
  for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    for (const bool hedging : {false, true}) {
      for (const bool caching : {false, true}) {
        cluster::ClusterConfig ccfg;
        ccfg.num_shards = shards;
        ccfg.partition = cluster::PartitionStrategy::kRoundRobin;
        ccfg.replicas_per_shard = 2;
        ccfg.arrival_qps = qps;
        ccfg.seed = 2027;
        ccfg.straggler.probability = 0.05;
        ccfg.straggler.slowdown = 20.0;
        ccfg.hedge.enabled = hedging;
        ccfg.hedge.percentile = 95.0;
        ccfg.hedge.min_samples = 16;
        ccfg.cache_capacity = caching ? 256 : 0;
        // Byte-budgeted result cache (DESIGN.md §7): entry count is still
        // the binding limit here, but the bytes are now accounted and
        // reported below.
        ccfg.cache_budget_bytes = caching ? (std::uint64_t{1} << 20) : 0;

        cluster::ClusterBroker broker(idx, ccfg);
        const auto res = broker.run(stream);

        double util = 0.0;
        for (const double u : res.shard_utilization) util += u;
        util /= static_cast<double>(res.shard_utilization.size());

        // Engine-tier caches (device lists + host decoded postings) warm on
        // the same Zipf head the broker's result cache exploits; their hit
        // rates are the per-shard view of that skew.
        std::printf("%-7u %-6s %-6s %9.3f %9.3f %8.0f%% %7.0f%% %8llu %9llu "
                    "%7.0f%% %7.0f%%\n",
                    shards, onoff(hedging), onoff(caching),
                    res.response_ms.percentile(50),
                    res.response_ms.percentile(99), 100.0 * util,
                    100.0 * res.cache.hit_rate(),
                    static_cast<unsigned long long>(res.hedge.issued),
                    static_cast<unsigned long long>(res.hedge.won),
                    100.0 * res.engine_cache.device_hit_rate(),
                    100.0 * res.engine_cache.host_hit_rate());

        bench::Json row = bench::Json::object();
        row["shards"] = shards;
        row["hedging"] = hedging;
        row["result_cache"] = caching;
        row["response_ms"] = bench::latency_json(res.response_ms);
        row["utilization"] = util;
        row["result_cache_hit_rate"] = res.cache.hit_rate();
        row["result_cache_bytes"] = res.result_cache_bytes;
        row["hedges_issued"] = res.hedge.issued;
        row["hedges_won"] = res.hedge.won;
        bench::Json ec = bench::Json::object();
        ec["device_hit_rate"] = res.engine_cache.device_hit_rate();
        ec["host_hit_rate"] = res.engine_cache.host_hit_rate();
        ec["device_hits"] = res.engine_cache.device_hits;
        ec["device_evictions"] = res.engine_cache.device_evictions;
        ec["host_hits"] = res.engine_cache.host_hits;
        ec["host_evictions"] = res.engine_cache.host_evictions;
        row["engine_cache"] = std::move(ec);
        rows.push_back(std::move(row));
      }
    }
    std::printf("\n");
  }

  bench::Json root = bench::Json::object();
  root["bench"] = "cluster_scaling";
  root["fast_mode"] = bench::fast_mode();
  root["num_docs"] = cfg.num_docs;
  root["num_terms"] = cfg.num_terms;
  root["offered_qps"] = qps;
  root["rows"] = std::move(rows);
  bench::write_bench_json("cluster_scaling", root);

  std::printf("(p99 with hedging on should sit well below hedging off at "
              "every shard count:\nthe injected stragglers are exactly the "
              "requests the adaptive p95 timer re-issues.\ncache hits skip "
              "the whole scatter-gather, so p50 drops toward the broker's\n"
              "cache-hit latency once the Zipf head warms the LRU.)\n");
  return 0;
}
