// Enterprise-search scenario (the paper's motivating interactive service):
// a mid-size synthetic document collection served by three engine
// configurations side by side. Shows the public workload + engine APIs and
// the per-query latency breakdown an operator would watch.
#include <cstdio>
#include <vector>

#include "core/hybrid_engine.h"
#include "workload/corpus.h"
#include "workload/querylog.h"

using namespace griffin;

int main() {
  workload::CorpusConfig cfg;
  cfg.num_docs = 1'000'000;
  cfg.num_terms = 1'000;
  cfg.num_topics = 16;
  cfg.topic_affinity = 0.6;
  cfg.seed = 11;
  std::printf("building synthetic enterprise corpus (%u docs, %u terms)...\n",
              cfg.num_docs, cfg.num_terms);
  const index::InvertedIndex idx = workload::generate_corpus(cfg);
  std::printf("postings: %llu   compression ratio (EF): %.2f\n\n",
              static_cast<unsigned long long>(idx.total_postings()),
              idx.compression_ratio());

  cpu::CpuEngine cpu_engine(idx);
  gpu::GpuEngine gpu_engine(idx);
  core::HybridEngine griffin(idx);

  workload::QueryLogConfig qcfg;
  qcfg.num_queries = 12;
  qcfg.term_zipf_s = 1.2;
  qcfg.num_topics = cfg.num_topics;
  qcfg.seed = 3;
  const auto log = workload::generate_query_log(qcfg, cfg.num_terms);

  std::printf("%-4s %6s %8s %12s %12s %12s %6s\n", "q#", "terms", "matches",
              "cpu (ms)", "gpu (ms)", "griffin(ms)", "plan");
  for (const auto& q : log) {
    const auto c = cpu_engine.execute(q);
    const auto g = gpu_engine.execute(q);
    const auto h = griffin.execute(q);
    std::string plan;
    for (const auto p : h.metrics.placements) {
      plan += (p == core::Placement::kGpu ? 'G' : 'C');
    }
    std::printf("%-4llu %6zu %8llu %12.3f %12.3f %12.3f %6s\n",
                static_cast<unsigned long long>(q.id), q.terms.size(),
                static_cast<unsigned long long>(h.metrics.result_count),
                c.metrics.total.ms(), g.metrics.total.ms(),
                h.metrics.total.ms(), plan.c_str());

    // All three configurations must agree on the results.
    if (c.topk.size() != h.topk.size() ||
        (c.topk.size() > 0 && c.topk[0].doc != h.topk[0].doc)) {
      std::printf("ENGINE DISAGREEMENT on query %llu!\n",
                  static_cast<unsigned long long>(q.id));
      return 1;
    }
  }
  std::printf("\nplan legend: one letter per intersection step "
              "(G = GPU, C = CPU); a G->C flip is an intra-query migration.\n");
  return 0;
}
