// Quickstart: build a tiny index from documents, run a conjunctive query on
// the hybrid Griffin engine, print ranked results.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/hybrid_engine.h"
#include "index/dictionary.h"
#include "index/inverted_index.h"

using namespace griffin;

int main() {
  // A miniature corpus. Each string is one document.
  const std::vector<std::string> documents = {
      "gpu query processing for information retrieval",
      "cpu branch prediction and cache friendly merge",
      "gpu merge path load balanced intersection",
      "elias fano compressed posting lists on gpu",
      "search engines rank documents with bm25",
      "hybrid cpu gpu systems schedule query operations",
      "posting lists intersection with skip pointers on cpu",
      "parallel decompression of compressed posting lists",
  };

  // Tokenize through the term dictionary (dense TermIds, interned strings).
  index::Dictionary vocab;
  index::IndexBuilder builder(codec::Scheme::kEliasFano);
  for (index::DocId doc = 0; doc < documents.size(); ++doc) {
    std::map<index::TermId, std::uint32_t> tf;
    for (const auto t : vocab.tokenize_interning(documents[doc])) ++tf[t];
    std::vector<std::pair<index::TermId, std::uint32_t>> terms(tf.begin(),
                                                               tf.end());
    builder.add_document(doc, terms);
  }
  index::InvertedIndex idx = builder.build();
  std::printf("indexed %zu documents, %zu terms, %llu postings\n",
              documents.size(), idx.num_terms(),
              static_cast<unsigned long long>(idx.total_postings()));

  // Query: documents containing both "gpu" AND "posting" AND "lists".
  core::HybridEngine engine(idx);
  core::Query q;
  q.terms = vocab.tokenize("gpu posting lists");
  q.k = 5;

  const core::QueryResult res = engine.execute(q);
  std::printf("\nquery: gpu AND posting AND lists -> %llu matches\n",
              static_cast<unsigned long long>(res.metrics.result_count));
  for (const auto& sd : res.topk) {
    std::printf("  doc %u  score %.3f  | %s\n", sd.doc, sd.score,
                documents[sd.doc].c_str());
  }
  std::printf("\nsimulated latency: %.1f us (decode %.1f, intersect %.1f, "
              "transfer %.1f, rank %.1f)\n",
              res.metrics.total.us(), res.metrics.decode.us(),
              res.metrics.intersect.us(), res.metrics.transfer.us(),
              res.metrics.rank.us());

  // On a toy index the paper's ratio rule still picks the GPU (the lists
  // have a small length ratio) and pays transfer overhead it can never
  // amortize; the cost-model scheduler extension notices and stays on the
  // CPU. Real corpora are where the GPU earns its keep — see the benches.
  core::HybridOptions cost_opt;
  cost_opt.scheduler.policy = core::SchedulerPolicy::kCostModel;
  core::HybridEngine cost_engine(idx, {}, cost_opt);
  const auto res2 = cost_engine.execute(q);
  std::printf("with the cost-model scheduler: %.1f us (same results)\n",
              res2.metrics.total.us());
  return 0;
}
