// Latency study: replay a query trace through the CPU-only engine and
// Griffin, then print the percentile profile and a per-query migration log —
// the operator-facing view of the paper's Figure 15 experiment at laptop
// scale.
#include <cstdio>

#include "core/hybrid_engine.h"
#include "util/stats.h"
#include "workload/corpus.h"
#include "workload/querylog.h"

using namespace griffin;

int main() {
  workload::CorpusConfig cfg;
  cfg.num_docs = 2'000'000;
  cfg.num_terms = 500;
  cfg.num_topics = 16;
  cfg.topic_affinity = 0.6;
  cfg.min_list_size = 256;
  cfg.seed = 21;
  std::printf("building corpus (%u docs)...\n", cfg.num_docs);
  const auto idx = workload::generate_corpus(cfg);

  cpu::CpuEngine cpu_engine(idx);
  core::HybridEngine griffin(idx);

  workload::QueryLogConfig qcfg;
  qcfg.num_queries = 120;
  qcfg.term_zipf_s = 1.2;
  qcfg.num_topics = cfg.num_topics;
  qcfg.seed = 9;
  const auto log = workload::generate_query_log(qcfg, cfg.num_terms);

  util::PercentileTracker cpu_ms, grif_ms;
  std::uint64_t migrations = 0, gpu_steps = 0, cpu_steps = 0;
  for (const auto& q : log) {
    cpu_ms.add(cpu_engine.execute(q).metrics.total.ms());
    const auto h = griffin.execute(q);
    grif_ms.add(h.metrics.total.ms());
    migrations += h.metrics.migrations;
    for (const auto p : h.metrics.placements) {
      (p == core::Placement::kGpu ? gpu_steps : cpu_steps) += 1;
    }
  }

  std::printf("\n%zu queries | griffin ran %llu steps on GPU, %llu on CPU, "
              "%llu migrations\n\n",
              log.size(), static_cast<unsigned long long>(gpu_steps),
              static_cast<unsigned long long>(cpu_steps),
              static_cast<unsigned long long>(migrations));
  std::printf("%-12s %12s %14s %10s\n", "percentile", "CPU (ms)",
              "Griffin (ms)", "speedup");
  for (const double p : {50.0, 80.0, 90.0, 95.0, 99.0}) {
    const double c = cpu_ms.percentile(p);
    const double g = grif_ms.percentile(p);
    std::printf("%-12.0f %12.3f %14.3f %9.1fx\n", p, c, g, c / g);
  }
  std::printf("%-12s %12.3f %14.3f %9.1fx\n", "mean", cpu_ms.mean(),
              grif_ms.mean(), cpu_ms.mean() / grif_ms.mean());
  return 0;
}
