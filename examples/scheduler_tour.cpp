// A guided tour of Griffin's intra-query scheduler: for one hand-built
// query, print each pairwise step's shape (intermediate size, next list,
// ratio), the scheduler's decision under both policies, and the engines'
// closed-form step estimates — then execute and show what actually happened.
#include <cstdio>
#include <vector>

#include "core/hybrid_engine.h"
#include "workload/corpus.h"

using namespace griffin;

int main() {
  workload::CorpusConfig cfg;
  cfg.num_docs = 2'000'000;
  cfg.num_terms = 200;
  cfg.num_topics = 8;
  cfg.topic_affinity = 0.6;
  cfg.min_list_size = 256;
  cfg.seed = 77;
  std::printf("building corpus...\n");
  const auto idx = workload::generate_corpus(cfg);

  // Same-topic terms (ids congruent mod 8): three mid-size lists whose
  // intersection shrinks round by round, then the topic's giant list — by
  // which point the ratio has crossed 128 and the query must migrate.
  core::Query q;
  q.terms = {56, 48, 40, 0};
  std::printf("\nquery terms (sorted by list length at execution):\n");
  for (const auto t : q.terms) {
    std::printf("  term %3u: %9llu postings\n", t,
                static_cast<unsigned long long>(idx.list(t).size()));
  }

  const core::Scheduler ratio_sched{core::SchedulerOptions{}};
  core::SchedulerOptions cost_opt;
  cost_opt.policy = core::SchedulerPolicy::kCostModel;
  const core::Scheduler cost_sched{cost_opt};

  // Walk the SvS plan the way the engine will, predicting each decision.
  std::vector<index::TermId> terms(q.terms);
  std::sort(terms.begin(), terms.end(),
            [&](index::TermId a, index::TermId b) {
              return idx.list(a).size() < idx.list(b).size();
            });
  std::printf("\npredicted schedule:\n");
  std::uint64_t inter = idx.list(terms[0]).size();
  std::optional<core::Placement> loc;
  for (std::size_t i = 1; i < terms.size(); ++i) {
    core::StepShape s;
    s.shorter = inter;
    s.longer = idx.list(terms[i]).size();
    s.longer_bytes = idx.list(terms[i]).docids.compressed_bytes();
    s.current_location = loc;
    const auto ratio_pick = ratio_sched.decide(s);
    const auto cost_pick = cost_sched.decide(s);
    std::printf(
        "  step %zu: |inter|=%8llu vs |list|=%8llu  ratio=%7.1f  "
        "ratio-rule=%s cost-rule=%s (est cpu %.3fms, gpu %.3fms)\n",
        i, static_cast<unsigned long long>(s.shorter),
        static_cast<unsigned long long>(s.longer),
        static_cast<double>(s.longer) / static_cast<double>(s.shorter),
        ratio_pick == core::Placement::kGpu ? "GPU" : "CPU",
        cost_pick == core::Placement::kGpu ? "GPU" : "CPU",
        cost_sched.estimate_cpu(s).ms(), cost_sched.estimate_gpu(s).ms());
    loc = ratio_pick;
    // Rough shrink estimate for the preview only: correlated same-topic
    // lists keep roughly a third of the shorter side per round (the actual
    // execution below shows the true sizes).
    inter = std::max<std::uint64_t>(inter / 3, 1);
  }

  std::printf("\nactual execution (ratio rule):\n");
  core::HybridEngine engine(idx);
  const auto res = engine.execute(q);
  std::printf("  placements: ");
  for (const auto p : res.metrics.placements) {
    std::printf("%c", p == core::Placement::kGpu ? 'G' : 'C');
  }
  std::printf("   migrations: %llu\n",
              static_cast<unsigned long long>(res.metrics.migrations));
  std::printf("  matches: %llu   total %.3f ms (decode %.3f, intersect %.3f, "
              "transfer %.3f, rank %.3f)\n",
              static_cast<unsigned long long>(res.metrics.result_count),
              res.metrics.total.ms(), res.metrics.decode.ms(),
              res.metrics.intersect.ms(), res.metrics.transfer.ms(),
              res.metrics.rank.ms());
  return 0;
}
